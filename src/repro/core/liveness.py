"""Liveness analysis: per-step live sets and free lists (paper §3.2).

The paper constructs an ``in``/``out`` set for every step by scanning
all subsequent steps for dependencies (O(N²)).  We compute the identical
result by a single pass that records each tensor's *last reader*
(O(total dependency edges)): ``out(s) = in(s) − {t : last_use(t) = s}``.
:class:`LivenessAnalysis` exposes the in/out sets (used by tests and the
Fig. 10 traces); :class:`LivenessPlan` is the compiled artifact the
executor consumes — for each step, which tensors stop needing GPU
residency after it.

Interaction with the other optimizations changes *which reads count*:

* recomputation ON → backward reads of recomputable tensors are served
  by recomputation, so those reads don't extend GPU liveness; instead
  the *anchor checkpoints* gain backward uses (they feed the re-runs);
* offloading ON → checkpoint outputs lose GPU residency after their
  last forward read (the host copy covers the backward), and regain it
  at prefetch — the plan reports those "gpu-release" points separately.

Inference mode needs no special casing here: the executor hands this
analysis the forward-only route (``ExecutionRoute(net,
training=False)``), so every tensor's last use *is* its last forward
consumer and the compiled free lists release activations the moment
the forward pass is done with them — the source of the serving mode's
peak-memory drop.  (The offload/recompute interactions above never
trigger on such a route: ``RuntimeConfig.for_mode("infer")`` disarms
both.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from repro.core.config import RecomputeStrategy, RuntimeConfig
from repro.graph.route import ExecutionRoute, Phase, Step
from repro.layers.base import Layer, LayerType
from repro.tensors.tensor import Tensor


@dataclass
class LivenessPlan:
    """Compiled per-step schedules the executor follows.

    Attributes
    ----------
    free_after:
        step index -> tensors whose GPU allocation (and payload) can be
        dropped entirely after the step executes.
    gpu_release_after:
        step index -> offloaded tensors whose *GPU copy* becomes
        droppable after the step (host copy retained for backward).
    last_use:
        tensor_id -> last step index that reads it (whole iteration).
    recompute_covered:
        tensor ids whose backward reads are satisfied by recomputation.
    """

    free_after: Dict[int, List[Tensor]] = field(default_factory=dict)
    gpu_release_after: Dict[int, List[Tensor]] = field(default_factory=dict)
    last_use: Dict[int, int] = field(default_factory=dict)
    recompute_covered: Set[int] = field(default_factory=set)

    def frees(self, step_index: int) -> List[Tensor]:
        return self.free_after.get(step_index, [])

    def releases(self, step_index: int) -> List[Tensor]:
        return self.gpu_release_after.get(step_index, [])

    def freeze(self) -> Dict[int, tuple]:
        """Immutable per-step free lists for the compiled IterationPlan.

        A snapshot (not a view): replay executes these tuples directly,
        so later mutation of ``free_after`` only affects iterations
        whose plan is compiled afterwards.
        """
        return {i: tuple(ts) for i, ts in self.free_after.items() if ts}


class LivenessAnalysis:
    """Builds in/out sets and the executor plan for one route + config."""

    def __init__(
        self,
        route: ExecutionRoute,
        config: Optional[RuntimeConfig] = None,
        recompute_plan=None,
    ):
        self.route = route
        self.config = config or RuntimeConfig()
        if recompute_plan is None and self._recompute_on():
            from repro.core.recompute import plan_segments
            recompute_plan = plan_segments(
                route, self.config.recompute, route.net.max_layer_bytes()
            )
        self.recompute_plan = recompute_plan
        self._reads: Dict[int, List[Tensor]] = {}
        self._writes: Dict[int, List[Tensor]] = {}
        # synthetic anchor reads: keep checkpoints alive for segment
        # re-execution, but they are *not* kernel reads (the prefetcher
        # must not treat them as demand)
        self._synthetic: Dict[int, List[Tensor]] = {}
        self._collect_dependencies()

    # -- dependency collection ------------------------------------------------
    def _recompute_on(self) -> bool:
        return self.config.recompute is not RecomputeStrategy.NONE

    def _is_recompute_dropped(self, t: Tensor) -> bool:
        """Is ``t`` an output the recomputation engine will rebuild?"""
        if not self._recompute_on() or self.recompute_plan is None:
            return False
        return t.producer in self.recompute_plan.dropped_layers

    def _collect_dependencies(self) -> None:
        route = self.route
        for step in route.steps:
            if step.phase is Phase.FORWARD:
                reads = list(route.forward_reads(step.layer))
                writes = list(route.step_writes(step))
            else:
                reads = []
                for t in route.backward_reads(step.layer):
                    if self._is_recompute_dropped(t):
                        # served by recomputation: the GPU read retargets
                        # to the segment anchor (handled below)
                        continue
                    reads.append(t)
                if step.layer.grad_output is not None and step.layer.next:
                    # grad_output exists iff some consumer produced it
                    reads.append(step.layer.grad_output)
                writes = list(route.step_writes(step))
            self._reads[step.index] = reads
            self._writes[step.index] = writes

        if self._recompute_on():
            # Anchors must survive until the *backward* of every layer in
            # their downstream segment, because re-running the segment
            # forward starts from the anchor's output.
            self._extend_anchor_lifetimes()

    def _extend_anchor_lifetimes(self) -> None:
        """Keep every *external input* of each segment alive through the
        backward steps that can trigger the segment's re-execution.

        Externals are the tensors a re-run of the segment reads but does
        not rebuild: the anchor checkpoint, plus — in fan topologies —
        any other checkpoint or kept tensor feeding a dropped member
        (e.g. both branches entering a Concat).  Trigger steps are the
        backward of every dropped member and of every consumer of a
        dropped member's output."""
        route = self.route
        if self.recompute_plan is None:
            return
        dropped_ids = self.recompute_plan.dropped_layers
        for seg in self.recompute_plan.segments:
            externals = []
            if seg.anchor.output is not None:
                externals.append(seg.anchor.output)
            for member in seg.dropped:
                for p in member.prev:
                    if p.layer_id not in dropped_ids and p.output is not None:
                        externals.append(p.output)
            seen = set()
            externals = [t for t in externals
                         if not (t.tensor_id in seen or seen.add(t.tensor_id))]
            trigger_steps = set()
            for member in seg.dropped:
                trigger_steps.add(route.bstep_of[member.layer_id])
                for consumer in member.next:
                    trigger_steps.add(route.bstep_of[consumer.layer_id])
            for bstep in trigger_steps:
                for t in externals:
                    self._reads.setdefault(bstep, []).append(t)
                    self._synthetic.setdefault(bstep, []).append(t)
            # intermediate recomputables: re-running layer j's forward
            # also reads the outputs of recomputables between the anchor
            # and j — but those are themselves rebuilt, so they impose no
            # *persistent* liveness, only transient usage accounted by
            # the executor at recompute time.

    # -- in/out sets (paper Fig. 5) ------------------------------------------------
    def in_out_sets(self) -> List[Dict[str, Set[int]]]:
        """The paper's per-step ``in``/``out`` live-tensor-id sets."""
        last = self.last_use_map()
        live: Set[int] = set()
        sets: List[Dict[str, Set[int]]] = []
        for step in self.route.steps:
            created = {t.tensor_id for t in self._writes[step.index]}
            in_set = live | created
            dead = {tid for tid in in_set if last.get(tid, -1) <= step.index}
            out_set = in_set - dead
            sets.append({"in": in_set, "out": out_set})
            live = out_set
        return sets

    def last_use_map(self) -> Dict[int, int]:
        """tensor_id -> last step that reads or writes it."""
        last: Dict[int, int] = {}
        for step in self.route.steps:
            for t in self._writes[step.index]:
                last[t.tensor_id] = max(last.get(t.tensor_id, -1), step.index)
            for t in self._reads[step.index]:
                last[t.tensor_id] = max(last.get(t.tensor_id, -1), step.index)
        return last

    def reads_at(self, step_index: int, include_synthetic: bool = True
                 ) -> List[Tensor]:
        reads = self._reads[step_index]
        if include_synthetic:
            return reads
        synth = {t.tensor_id for t in self._synthetic.get(step_index, [])}
        return [t for t in reads if t.tensor_id not in synth]

    # -- plan compilation ----------------------------------------------------------
    def compile(self) -> LivenessPlan:
        plan = LivenessPlan()
        cfg = self.config
        route = self.route
        last = self.last_use_map()
        plan.last_use = dict(last)

        if self._recompute_on() and self.recompute_plan is not None:
            for layer in route.net.layers:
                if layer.layer_id in self.recompute_plan.dropped_layers \
                        and layer.output is not None:
                    plan.recompute_covered.add(layer.output.tensor_id)

        if not cfg.use_liveness:
            # Baseline: nothing is freed mid-iteration; the executor
            # frees everything at iteration end.
            return plan

        n_steps = len(route.steps)
        seen: Dict[int, Tensor] = {}
        for step in route.steps:
            for t in self._writes[step.index] + self._reads[step.index]:
                seen.setdefault(t.tensor_id, t)

        offloadable = self._offloadable_ids() if cfg.use_offload else set()

        from repro.tensors.tensor import TensorKind  # local: avoid cycle

        grads_only = cfg.liveness_scope == "grads_only"
        for tid, t in seen.items():
            if grads_only and t.kind not in (TensorKind.GRAD,
                                             TensorKind.PARAM_GRAD):
                continue
            last_step = last[tid]
            if cfg.use_offload and tid in offloadable and not cfg.use_tensor_cache:
                # eager offload: the GPU copy is droppable after the last
                # *forward* read; backward reads hit the host copy via
                # prefetch.  The full free still happens at last_use.
                lf = self._last_forward_use(t)
                if lf is not None and lf < last_step:
                    plan.gpu_release_after.setdefault(lf, []).append(t)
            if last_step < n_steps:
                plan.free_after.setdefault(last_step, []).append(t)
        return plan

    def _offloadable_ids(self) -> Set[int]:
        ids: Set[int] = set()
        for layer in self.route.net.layers:
            if layer.ltype in self.config.offload_types and layer.output is not None:
                ids.add(layer.output.tensor_id)
        return ids

    def _last_forward_use(self, t: Tensor) -> Optional[int]:
        n = self.route.num_layers
        best: Optional[int] = None
        for step in self.route.steps[:n]:
            if any(r.tensor_id == t.tensor_id
                   for r in self._reads[step.index] + self._writes[step.index]):
                best = step.index
        return best

    # -- peak predictions (the paper's closed forms) ----------------------------------
    def predicted_peak_liveness(self) -> int:
        """Σ l_f + l_b(N): the paper's closed-form liveness peak."""
        net = self.route.net
        lbn = self.route.forward_layers[-1].l_b()
        return net.total_forward_bytes() + lbn

    def predicted_peak_offload(self) -> int:
        """Σ (l_f ∉ checkpoints) + l_b(N)."""
        total = 0
        for layer in self.route.forward_layers:
            if layer.ltype not in self.config.offload_types:
                total += layer.l_f()
        return total + self.route.forward_layers[-1].l_b()
