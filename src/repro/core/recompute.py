"""Recomputation planning (paper §3.4, Fig. 9, Table 1).

The forward outputs of cheap, memory-heavy layers (POOL/ACT/LRN/BN/...)
are freed during the forward pass and *recomputed* from the nearest
upstream checkpoint when the backward pass needs them.  Contiguous runs
of recomputable layers between checkpoints form *segments*; per segment
the runtime picks a strategy:

* **speed-centric** — recompute the whole segment once on first demand
  and keep the results for the remaining backward layers of the
  segment: ``k`` extra forwards, but transiently ``Σ l_f(seg) + l_b``
  resident — which can exceed ``l_peak``.
* **memory-centric** — recompute the chain anchor→j for every backward
  layer j and drop intermediates immediately: ``k(k+1)/2`` extra
  forwards, never more than one pair of outputs resident.
* **cost-aware** — speed-centric where the segment's
  ``mem_cost ≤ l_peak``, memory-centric otherwise: extra forwards stay
  near the speed-centric count while the peak never exceeds ``l_peak``
  (Table 1's three-way comparison).

The plan is static (shapes are static); the executor's
:class:`~repro.core.runtime.Executor` RecomputeEngine interprets it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.config import RecomputeStrategy
from repro.graph.route import ExecutionRoute
from repro.layers.base import Layer


@dataclass
class Segment:
    """One recomputation unit: a checkpoint anchor plus the recomputable
    run that follows it in route order.

    ``dropped`` are the members whose outputs the forward pass actually
    frees.  A member is *kept* (stays resident, never recomputed) when
    some consumer lies outside the segment and is not a checkpoint —
    e.g. a ResNet identity shortcut feeding a Join two segments later.
    Dropping those would make recomputation chains cascade backwards
    through every preceding block (unbounded work the paper's linear
    analysis never meets).
    """

    anchor: Layer
    members: List[Layer] = field(default_factory=list)
    dropped: List[Layer] = field(default_factory=list)
    strategy: RecomputeStrategy = RecomputeStrategy.SPEED_CENTRIC

    @property
    def size(self) -> int:
        return len(self.dropped)

    def mem_cost(self) -> int:
        """Σ l_f over dropped members + the largest member backward
        (paper's ``Σ l_f(i) + l_b(seg)``)."""
        if not self.dropped:
            return 0
        return sum(l.l_f() for l in self.dropped) + \
            max(l.l_b() for l in self.members)

    def extra_forwards(self, strategy: Optional[RecomputeStrategy] = None) -> int:
        """Predicted extra forward executions for this segment."""
        s = strategy or self.strategy
        k = self.size
        if k == 0 or s is RecomputeStrategy.NONE:
            return 0
        if s is RecomputeStrategy.SPEED_CENTRIC:
            return k
        if s is RecomputeStrategy.MEMORY_CENTRIC:
            return k * (k + 1) // 2
        raise ValueError(f"unresolved strategy {s}")


@dataclass
class RecomputePlan:
    """All segments plus per-layer lookup tables."""

    strategy: RecomputeStrategy
    segments: List[Segment] = field(default_factory=list)
    l_peak: int = 0
    segment_of: Dict[int, Segment] = field(default_factory=dict)  # layer_id ->
    dropped_layers: set = field(default_factory=set)              # layer ids

    @property
    def enabled(self) -> bool:
        return self.strategy is not RecomputeStrategy.NONE

    def anchor_output_of(self, layer_id: int):
        """The checkpoint output a re-run of ``layer_id``'s segment
        starts from (None when the layer is in no segment or the anchor
        produces nothing) — the tensor prefetch-ahead warms up."""
        seg = self.segment_of.get(layer_id)
        if seg is None:
            return None
        return seg.anchor.output

    def total_extra_forwards(self) -> int:
        return sum(seg.extra_forwards() for seg in self.segments)

    def peak_m(self) -> int:
        """Predicted peak under this plan (Table 1's peak_m column).

        Speed-centric segments can transiently hold their whole segment;
        memory-centric ones are bounded by the member layers themselves.
        """
        peak = self.l_peak
        for seg in self.segments:
            if seg.strategy is RecomputeStrategy.SPEED_CENTRIC and seg.members:
                peak = max(peak, seg.mem_cost())
        return peak


def plan_segments(
    route: ExecutionRoute,
    strategy: RecomputeStrategy,
    l_peak: Optional[int] = None,
) -> RecomputePlan:
    """Partition the route into segments and resolve per-segment strategy."""
    if l_peak is None:
        l_peak = route.net.max_layer_bytes()
    plan = RecomputePlan(strategy=strategy, l_peak=l_peak)
    if strategy is RecomputeStrategy.NONE:
        return plan

    current: Optional[Segment] = None
    for layer in route.forward_layers:
        if layer.is_checkpoint:
            if current is not None and current.members:
                plan.segments.append(current)
            current = Segment(anchor=layer)
        elif layer.is_recomputable:
            if current is None:
                # recomputable before any checkpoint: cannot happen with a
                # DataLayer source (DATA is a checkpoint), but guard anyway
                raise ValueError(
                    f"recomputable layer {layer.name} precedes every checkpoint"
                )
            current.members.append(layer)
        else:
            # non-recomputable, non-checkpoint (e.g. SOFTMAX): breaks the
            # segment — its output must stay resident, so nothing after it
            # can recompute *through* it from the current anchor.
            if current is not None and current.members:
                plan.segments.append(current)
            current = None
    if current is not None and current.members:
        plan.segments.append(current)

    for seg in plan.segments:
        for member in seg.members:
            plan.segment_of[member.layer_id] = seg

    # Second pass: decide which members are actually droppable.  Every
    # consumer must be a checkpoint (its backward chain starts from our
    # anchor — bounded) or live in the same segment; anything else (a
    # Join in a later segment, a SOFTMAX) pins the tensor.
    for seg in plan.segments:
        for member in seg.members:
            droppable = all(
                c.is_checkpoint or plan.segment_of.get(c.layer_id) is seg
                for c in member.next
            )
            if droppable:
                seg.dropped.append(member)
                plan.dropped_layers.add(member.layer_id)

    for seg in plan.segments:
        if strategy is RecomputeStrategy.COST_AWARE:
            seg.strategy = (
                RecomputeStrategy.SPEED_CENTRIC
                if seg.mem_cost() <= l_peak
                else RecomputeStrategy.MEMORY_CENTRIC
            )
        else:
            seg.strategy = strategy
    return plan
