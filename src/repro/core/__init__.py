"""The paper's contribution: the dynamic GPU memory scheduling runtime.

Composition (paper §3):

* :mod:`~repro.core.liveness` — per-step live-tensor sets; frees tensors
  the moment no later step reads them.
* :mod:`~repro.core.utp` — Unified Tensor Pool: offloads checkpoint
  outputs to pinned host RAM during the forward pass, prefetches them
  back ahead of their backward consumers.
* :mod:`~repro.core.cache` — LRU tensor cache (Alg. 2): keeps tensors on
  the GPU while room remains, turning offload into eviction-on-pressure.
* :mod:`~repro.core.recompute` — segment-wise recomputation planning
  (speed-centric / memory-centric / cost-aware).
* :mod:`~repro.core.workspace` — per-step convolution algorithm choice
  under the memory left after the functional tensors are placed.
* :mod:`~repro.core.runtime` — the executor gluing it all together,
  with a byte-accurate trace of every step.
"""

from repro.core.config import RuntimeConfig, RecomputeStrategy, WorkspacePolicy
from repro.core.liveness import LivenessPlan, LivenessAnalysis
from repro.core.recompute import RecomputePlan, Segment, plan_segments
from repro.core.cache import TensorCache
from repro.core.runtime import Executor, IterationResult, StepTrace
from repro.core.workspace import WorkspaceSelector, WorkspaceChoice

__all__ = [
    "RuntimeConfig",
    "RecomputeStrategy",
    "WorkspacePolicy",
    "LivenessPlan",
    "LivenessAnalysis",
    "RecomputePlan",
    "Segment",
    "plan_segments",
    "TensorCache",
    "Executor",
    "IterationResult",
    "StepTrace",
    "WorkspaceSelector",
    "WorkspaceChoice",
]
