"""The paper's contribution: the dynamic GPU memory scheduling runtime.

Composition (paper §3):

* :mod:`~repro.core.liveness` — per-step live-tensor sets; frees tensors
  the moment no later step reads them.
* :mod:`~repro.core.cache` — LRU tensor cache (Alg. 2): keeps tensors on
  the GPU while room remains, turning offload into eviction-on-pressure.
* :mod:`~repro.core.recompute` — segment-wise recomputation planning
  (speed-centric / memory-centric / cost-aware).
* :mod:`~repro.core.workspace` — per-step convolution algorithm choice
  under the memory left after the functional tensors are placed.
* :mod:`~repro.core.policy` — the pluggable :class:`MemoryPolicy` API:
  each optimization is a policy observing the step loop through hooks
  and acting through a :class:`StepContext` facade.
* :mod:`~repro.core.runtime` — the policy-free executor driving the
  stack, with a byte-accurate trace of every step.
* :mod:`~repro.core.session` — the fluent ``Session`` builder, the
  top-level entry point.
"""

from repro.core.config import RuntimeConfig, RecomputeStrategy, WorkspacePolicy
from repro.core.liveness import LivenessPlan, LivenessAnalysis
from repro.core.recompute import RecomputePlan, Segment, plan_segments
from repro.core.cache import TensorCache
from repro.core.policy import (
    POLICY_REGISTRY,
    LivenessPolicy,
    MemoryPolicy,
    OffloadCachePolicy,
    RecomputePolicy,
    StepContext,
    describe_stack,
    register_policy,
    resolve_policies,
)
from repro.core.runtime import Executor, IterationResult, StepTrace
from repro.core.tensor_state import SessionTensorState
from repro.core.session import Session
from repro.core.workspace import WorkspaceSelector, WorkspaceChoice

__all__ = [
    "RuntimeConfig",
    "RecomputeStrategy",
    "WorkspacePolicy",
    "LivenessPlan",
    "LivenessAnalysis",
    "RecomputePlan",
    "Segment",
    "plan_segments",
    "TensorCache",
    "MemoryPolicy",
    "StepContext",
    "POLICY_REGISTRY",
    "register_policy",
    "resolve_policies",
    "describe_stack",
    "LivenessPolicy",
    "OffloadCachePolicy",
    "RecomputePolicy",
    "Executor",
    "IterationResult",
    "StepTrace",
    "SessionTensorState",
    "Session",
    "WorkspaceSelector",
    "WorkspaceChoice",
]
