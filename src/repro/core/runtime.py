"""The SuperNeurons executor: one training iteration under a config.

This is the runtime of paper §3 in one place.  A single step loop walks
the execution route; each optimization hooks a different moment of it:

* **liveness** — after every step, tensors past their last use are freed
  (plan precomputed by :class:`~repro.core.liveness.LivenessAnalysis`);
* **UTP offload/prefetch** — checkpoint outputs are copied to host on
  the D2H stream during the forward pass (eager mode) or evicted on
  pressure (cache mode); backward CONV steps prefetch the tensors the
  *previous* CONV layer's backward will need on the H2D stream;
* **recomputation** — backward steps that need a freed recomputable
  tensor re-run the segment forward from its checkpoint anchor;
* **dynamic workspaces** — every conv execution picks the fastest
  algorithm whose workspace fits the bytes currently free.

The executor runs identically in concrete mode (NumPy payloads, used to
prove numerical equivalence) and simulated mode (byte/time ledger only,
used for 12 GB-scale capacity and speed benchmarks).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.core.cache import TensorCache
from repro.core.config import RecomputeStrategy, RuntimeConfig, WorkspacePolicy
from repro.core.liveness import LivenessAnalysis, LivenessPlan
from repro.core.recompute import RecomputePlan, plan_segments
from repro.core.workspace import WorkspaceChoice, WorkspaceSelector
from repro.device.dma import CopyDirection, DMAEngine
from repro.device.fabric import MemoryFabric
from repro.device.gpu import OutOfMemoryError, SimulatedGPU
from repro.device.model import DeviceModel
from repro.device.timeline import Event, Stream, Timeline
from repro.graph.network import Net
from repro.graph.route import ExecutionRoute, Phase, Step
from repro.layers.base import Layer, LayerContext, LayerType
from repro.layers.conv import Conv2D
from repro.layers.data import DataLayer
from repro.layers.softmax import SoftmaxLoss
from repro.mempool.allocator import Allocation, CudaAllocator, PoolAllocator
from repro.tensors.store import ArrayStore, NullStore
from repro.tensors.tensor import Placement, Tensor, TensorKind


@dataclass
class StepTrace:
    """Byte-accurate record of one step (drives Fig. 10)."""

    index: int
    label: str
    phase: str
    used_high: int        # allocator bytes at the step's high-water point
    used_settled: int     # after the step's frees
    activation_high: int  # same minus the persistent parameter footprint
    activation_settled: int
    live_tensors: int
    workspace: Optional[WorkspaceChoice] = None


@dataclass
class IterationResult:
    """Everything one iteration reports."""

    iteration: int
    loss: Optional[float]
    sim_time: float
    peak_bytes: int
    activation_peak_bytes: int
    param_bytes: int
    traces: List[StepTrace] = field(default_factory=list)
    d2h_bytes: int = 0
    h2d_bytes: int = 0
    alloc_calls: int = 0
    alloc_overhead: float = 0.0
    extra_forwards: int = 0
    stall_seconds: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    workspace_choices: List[WorkspaceChoice] = field(default_factory=list)

    @property
    def offload_traffic_bytes(self) -> int:
        return self.d2h_bytes + self.h2d_bytes

    def to_dict(self) -> dict:
        """JSON-serializable summary (traces flattened to plain dicts)."""
        return {
            "iteration": self.iteration,
            "loss": self.loss,
            "sim_time": self.sim_time,
            "peak_bytes": self.peak_bytes,
            "activation_peak_bytes": self.activation_peak_bytes,
            "param_bytes": self.param_bytes,
            "d2h_bytes": self.d2h_bytes,
            "h2d_bytes": self.h2d_bytes,
            "alloc_calls": self.alloc_calls,
            "alloc_overhead": self.alloc_overhead,
            "extra_forwards": self.extra_forwards,
            "stall_seconds": self.stall_seconds,
            "cache": {"hits": self.cache_hits, "misses": self.cache_misses,
                      "evictions": self.cache_evictions},
            "traces": [
                {
                    "index": t.index,
                    "label": t.label,
                    "phase": t.phase,
                    "used_high": t.used_high,
                    "used_settled": t.used_settled,
                    "activation_high": t.activation_high,
                    "activation_settled": t.activation_settled,
                    "live_tensors": t.live_tensors,
                    "workspace": None if t.workspace is None else {
                        "layer": t.workspace.layer_name,
                        "phase": t.workspace.phase,
                        "algo": t.workspace.algo.name,
                        "assigned_ws": t.workspace.assigned_ws,
                        "max_speed_ws": t.workspace.max_speed_ws,
                    },
                }
                for t in self.traces
            ],
        }


@dataclass
class _PendingOffload:
    tensor: Tensor
    event: Event
    allocation: Allocation


class RecomputeEngine:
    """Demand-driven segment recomputation (paper §3.4 strategies)."""

    def __init__(self, executor: "Executor", plan: RecomputePlan):
        self.ex = executor
        self.plan = plan
        self.extra_forwards = 0
        # speed-centric persistents: tensor_id -> (tensor, free_after_step)
        self._kept: Dict[int, Tuple[Tensor, int]] = {}
        self._materialized: Set[int] = set()  # id(segment anchors) done
        self._transient: List[Tensor] = []

    def reset_iteration(self) -> None:
        self._kept.clear()
        self._materialized.clear()
        self._transient.clear()

    # -- public hooks -----------------------------------------------------
    def ensure(self, missing: List[Tensor], ctx: LayerContext) -> None:
        """Make every tensor in ``missing`` resident by recomputation."""
        for t in missing:
            if t.is_live:
                continue
            producer = self.ex.net.layers[t.producer]
            if not producer.is_recomputable:
                raise RuntimeError(
                    f"tensor {t.name} was freed but its producer "
                    f"{producer.name} is not recomputable — scheduling bug"
                )
            seg = self.plan.segment_of.get(producer.layer_id)
            if seg is None:
                raise RuntimeError(f"{producer.name} not in any segment")
            if seg.strategy is RecomputeStrategy.SPEED_CENTRIC:
                self._materialize_segment(seg, ctx)
            else:
                self._chain_to(producer, ctx, targets={t.tensor_id})

    def after_step(self, step_index: int) -> None:
        """Free transients and expired speed-centric persistents."""
        for t in self._transient:
            if t.is_live:
                self.ex._discard(t)
        self._transient.clear()
        expired = [tid for tid, (_t, fa) in self._kept.items()
                   if fa <= step_index]
        for tid in expired:
            t, _fa = self._kept.pop(tid)
            if t.is_live:
                self.ex._discard(t)

    # -- strategies ------------------------------------------------------------
    def _materialize_segment(self, seg, ctx: LayerContext) -> None:
        """Speed-centric: re-run every member once, keep the results."""
        if id(seg) in self._materialized:
            # Already rebuilt this iteration; any member freed since then
            # had passed its backward use, so nothing more to do.
            return
        self._materialized.add(id(seg))
        for member in seg.members:
            if member.output is not None and member.output.is_live:
                continue
            self._run_forward(member, ctx)
            bstep = self.ex.route.bstep_of[member.layer_id]
            self._kept[member.output.tensor_id] = (member.output, bstep)
        self._release_offloaded_anchor(seg)

    def _release_offloaded_anchor(self, seg) -> None:
        """Drop the anchor's GPU copy once the chain has consumed it.

        The anchor stays in host RAM (it was offloaded); its own
        backward will prefetch it again.  Without this, the anchor
        inflates the segment-backward working set above l_peak —
        the paper's measured AlexNet peak (exactly 4 tensors at LRN1's
        backward) implies their runtime releases it too.
        """
        out = seg.anchor.output
        if out is not None and out.on_gpu and out.host_resident \
                and not out.locked:
            self.ex._free_gpu_only(out)

    def _chain_to(self, target_layer: Layer, ctx: LayerContext,
                  targets: Set[int]) -> None:
        """Memory-centric: rebuild anchor→target, dropping intermediates
        as soon as their chain consumer has run."""
        chain = self._chain_layers(target_layer)
        produced: List[Tensor] = []
        for i, member in enumerate(chain):
            if member.output is not None and member.output.is_live:
                continue
            self._run_forward(member, ctx)
            produced.append(member.output)
            # inputs that no later chain layer reads can go immediately
            still_needed = {
                inp.tensor_id
                for later in chain[i + 1:]
                for inp in (p.output for p in later.prev)
            }
            for t in list(produced):
                if t.tensor_id in targets or t.tensor_id in still_needed:
                    continue
                if t.tensor_id == member.output.tensor_id:
                    continue
                self.ex._discard(t)
                produced.remove(t)
        # whatever remains (the targets) lives only through this step
        self._transient.extend(p for p in produced if p.is_live)
        self._release_offloaded_anchor(
            self.plan.segment_of[target_layer.layer_id])

    def _chain_layers(self, target_layer: Layer) -> List[Layer]:
        """Members between the segment anchor and ``target_layer``, in
        forward route order (the re-execution schedule)."""
        seg = self.plan.segment_of[target_layer.layer_id]
        out: List[Layer] = []
        for m in seg.members:
            out.append(m)
            if m.layer_id == target_layer.layer_id:
                break
        return out

    # -- the actual re-execution --------------------------------------------------
    def _run_forward(self, layer: Layer, ctx: LayerContext) -> None:
        ex = self.ex
        for p in layer.prev:
            if not p.output.is_live:
                # nested dependency (e.g. a join reading another branch):
                # resolve recursively through the normal path
                self.ensure([p.output], ctx)
            ex._make_gpu_resident(p.output)
            p.output.lock()
        ex._gpu_alloc_tensor(layer.output)
        layer.output.lock()
        ex.timeline.submit(
            Stream.COMPUTE,
            layer.sim_time_forward(ex.model),
            f"recompute:{layer.name}",
        )
        if ex.concrete:
            ins = [ex.store.get_required(p.output) for p in layer.prev]
            out = layer.forward(ins, ctx)
            ex.store.put(layer.output, out)
        for p in layer.prev:
            p.output.unlock()
        layer.output.unlock()
        self.extra_forwards += 1


class Executor:
    """Runs training iterations of one network under one config."""

    def __init__(self, net: Net, config: Optional[RuntimeConfig] = None):
        self.net = net.build()
        self.config = config or RuntimeConfig()
        cfg = self.config
        self.concrete = cfg.concrete
        self.model: DeviceModel = cfg.device

        self.gpu = SimulatedGPU(self.model)
        if cfg.gpu_capacity is not None:
            self.gpu.capacity = cfg.gpu_capacity
        self.timeline = Timeline()
        self.dma = DMAEngine(self.timeline, self.model, pinned=cfg.pinned_host)
        self.fabric = MemoryFabric(cfg.external_pools,
                                   pinned=cfg.pinned_host)
        if cfg.use_pool_allocator:
            self.allocator = PoolAllocator(
                self.gpu, self.timeline, slab_bytes=cfg.pool_slab_bytes
            )
        else:
            self.allocator = CudaAllocator(self.gpu, self.timeline)
        self.store = ArrayStore() if self.concrete else NullStore()

        self.route = ExecutionRoute(self.net)
        self.recompute_plan = plan_segments(
            self.route, cfg.recompute, self.net.max_layer_bytes()
        )
        self.liveness = LivenessAnalysis(self.route, cfg, self.recompute_plan)
        self.plan: LivenessPlan = self.liveness.compile()
        self.engine = RecomputeEngine(self, self.recompute_plan)
        self.cache = TensorCache(policy=cfg.cache_policy)
        self.selector = WorkspaceSelector(cfg.workspace_policy, self.model)

        # runtime state
        self._alloc_of: Dict[int, Allocation] = {}
        self._pending: List[_PendingOffload] = []
        self._arrivals: Dict[int, Event] = {}
        self._live: Set[int] = set()
        self._stall = 0.0
        self.param_bytes = 0
        self._allocate_params()

    # ------------------------------------------------------------------ params
    def _allocate_params(self) -> None:
        for layer in self.net.layers:
            for p in layer.params:
                a = self.allocator.alloc(p.nbytes, tag=p.name)
                self._alloc_of[p.tensor_id] = a
                p.placement = Placement.GPU
                p.lock()  # params are never evictable
                self.param_bytes += p.nbytes

    def close(self) -> None:
        """Free everything (tests create many executors)."""
        for tid, a in list(self._alloc_of.items()):
            self.allocator.free(a)
        self._alloc_of.clear()
        if isinstance(self.allocator, PoolAllocator):
            self.allocator.close()

    # ------------------------------------------------------------- allocation
    def _gpu_alloc_tensor(self, t: Tensor) -> Allocation:
        """Allocate GPU bytes for ``t``, reaping/evicting under pressure."""
        if t.tensor_id in self._alloc_of:
            return self._alloc_of[t.tensor_id]
        a = self._try_alloc(t.nbytes, t.name)
        self._alloc_of[t.tensor_id] = a
        t.placement = Placement.GPU
        if t.kind in (TensorKind.DATA, TensorKind.GRAD):
            self._live.add(t.tensor_id)
        if t.kind is TensorKind.DATA and self.config.use_offload \
                and self.config.use_tensor_cache:
            self.cache.insert(t)
        return a

    def _try_alloc(self, nbytes: int, tag: str) -> Allocation:
        try:
            return self.allocator.alloc(nbytes, tag)
        except OutOfMemoryError:
            pass
        # 1) reap any completed eager offloads
        self._reap_offloads()
        try:
            return self.allocator.alloc(nbytes, tag)
        except OutOfMemoryError:
            pass
        # 2) force-complete pending offloads (stalls compute)
        while self._pending:
            self._force_reap_one()
            try:
                return self.allocator.alloc(nbytes, tag)
            except OutOfMemoryError:
                continue
        # 3) LRU eviction (Alg. 2 LRU.out) if the cache is armed.  The
        # loop handles fragmentation: freed bytes may not be contiguous,
        # so keep evicting (coalescing merges holes) until the request
        # fits or nothing evictable remains.
        if self.config.use_offload and self.config.use_tensor_cache:
            while True:
                freed = self.cache.evict_for(nbytes, self._evict_to_host)
                try:
                    return self.allocator.alloc(nbytes, tag)
                except OutOfMemoryError:
                    if freed == 0:
                        raise
        raise OutOfMemoryError(nbytes, self.allocator.free_bytes,
                               self.gpu.capacity)

    def _free_gpu_only(self, t: Tensor) -> None:
        """Drop the GPU copy; host copy (if any) keeps the tensor live."""
        a = self._alloc_of.pop(t.tensor_id, None)
        if a is not None:
            self.allocator.free(a)
        self.cache.remove(t)
        if t.host_resident:
            # keep the bytes: they may still be device-side if the D2H
            # copy that made the host reservation has not been reaped
            self.store.move_to_host(t)
            t.placement = Placement.HOST
        else:
            self.store.drop_device(t)
            t.placement = Placement.FREED
        if not t.is_live:
            self._live.discard(t.tensor_id)

    def _discard(self, t: Tensor) -> None:
        """Free a tensor everywhere (GPU, host, payloads)."""
        if t.kind is TensorKind.PARAM:
            return
        a = self._alloc_of.pop(t.tensor_id, None)
        if a is not None:
            self.allocator.free(a)
        self.cache.remove(t)
        if t.host_resident:
            self.fabric.evict(t.tensor_id)
            t.host_resident = False
        self.store.drop(t)
        self._arrivals.pop(t.tensor_id, None)
        t.placement = Placement.FREED
        self._live.discard(t.tensor_id)

    # ---------------------------------------------------------------- movement
    def _evict_to_host(self, t: Tensor) -> int:
        """Synchronous offload used by LRU eviction; returns bytes freed."""
        pool = self.fabric.stash(t.tensor_id, t.nbytes)
        ev = self.dma.copy_async(t.nbytes, CopyDirection.D2H,
                                 label=f"evict:{t.name}",
                                 rate_scale=pool.d2h_scale)
        self._stall += self.timeline.sync(Stream.COMPUTE, ev)
        t.host_resident = True
        self.store.move_to_host(t)
        a = self._alloc_of.pop(t.tensor_id, None)
        freed = 0
        if a is not None:
            self.allocator.free(a)
            freed = a.nbytes
        t.placement = Placement.HOST
        return freed

    def _offload_async(self, t: Tensor, after: Optional[List[Event]] = None) -> None:
        """Eager UTP offload: D2H overlaps following forward compute."""
        pool = self.fabric.stash(t.tensor_id, t.nbytes)
        ev = self.dma.copy_async(t.nbytes, CopyDirection.D2H,
                                 label=f"offload:{t.name}", after=after,
                                 rate_scale=pool.d2h_scale)
        t.host_resident = True
        a = self._alloc_of.get(t.tensor_id)
        if a is None:
            return
        self._pending.append(_PendingOffload(t, ev, a))

    def _reap_offloads(self) -> None:
        """Free GPU copies whose D2H transfer has completed by now."""
        now = self.timeline.now(Stream.COMPUTE)
        remaining: List[_PendingOffload] = []
        for p in self._pending:
            if p.event.time <= now:
                self._complete_offload(p)
            else:
                remaining.append(p)
        self._pending = remaining

    def _force_reap_one(self) -> None:
        p = self._pending.pop(0)
        self._stall += self.timeline.sync(Stream.COMPUTE, p.event)
        self._complete_offload(p)

    def _complete_offload(self, p: _PendingOffload) -> None:
        t = p.tensor
        a = self._alloc_of.pop(t.tensor_id, None)
        if a is not None:
            self.allocator.free(a)
        self.store.move_to_host(t)
        self.cache.remove(t)
        t.placement = Placement.HOST

    def _prefetch_async(self, t: Tensor) -> bool:
        """Start bringing a host tensor back; returns False if no room."""
        if t.placement is not Placement.HOST or t.tensor_id in self._arrivals:
            return t.tensor_id in self._arrivals
        try:
            a = self.allocator.alloc(t.nbytes, tag=f"prefetch:{t.name}")
        except OutOfMemoryError:
            return False
        self._alloc_of[t.tensor_id] = a
        pool = self.fabric.pool_of(t.tensor_id)
        ev = self.dma.copy_async(t.nbytes, CopyDirection.H2D,
                                 label=f"prefetch:{t.name}",
                                 rate_scale=pool.h2d_scale if pool else 1.0)
        self._arrivals[t.tensor_id] = ev
        t.placement = Placement.GPU
        self.store.move_to_gpu(t)
        if t.kind is TensorKind.DATA and self.config.use_offload \
                and self.config.use_tensor_cache:
            self.cache.insert(t)
        return True

    def _make_gpu_resident(self, t: Tensor) -> None:
        """Block until ``t`` is usable on the GPU."""
        if t.placement is Placement.GPU:
            ev = self._arrivals.pop(t.tensor_id, None)
            if ev is not None:
                self._stall += self.timeline.sync(Stream.COMPUTE, ev)
            self.cache.touch(t)
            return
        if t.placement is Placement.HOST:
            a = self._gpu_alloc_tensor(t)  # may evict/reap
            pool = self.fabric.pool_of(t.tensor_id)
            ev = self.dma.copy_async(
                t.nbytes, CopyDirection.H2D, label=f"fetch:{t.name}",
                rate_scale=pool.h2d_scale if pool else 1.0)
            self._stall += self.timeline.sync(Stream.COMPUTE, ev)
            self.store.move_to_gpu(t)
            t.placement = Placement.GPU
            return
        raise RuntimeError(
            f"tensor {t.name} is {t.placement.value}; cannot make resident"
        )

    # ------------------------------------------------------------------- grads
    def _ensure_grad(self, t: Tensor) -> None:
        if t.tensor_id in self._alloc_of:
            return
        self._gpu_alloc_tensor(t)
        if self.concrete:
            self.store.put(t, np.zeros(t.shape, dtype=np.float32))

    # ------------------------------------------------------------------ stepping
    def run_iteration(
        self,
        iteration: int = 0,
        optimizer=None,
    ) -> IterationResult:
        cfg = self.config
        ctx = LayerContext(iteration=iteration, training=True)
        self.engine.reset_iteration()
        self.allocator.reset_peak()
        t0 = self.timeline.elapsed
        d2h0, h2d0 = self.dma.stats.d2h_bytes, self.dma.stats.h2d_bytes
        calls0 = self.allocator.stats.calls
        ovh0 = self.allocator.stats.overhead_seconds
        hits0, miss0, ev0 = self.cache.hits, self.cache.misses, self.cache.evictions
        extra0 = self.engine.extra_forwards
        stall0 = self._stall
        ws_start = len(self.selector.choices)
        traces: List[StepTrace] = []
        n = self.route.num_layers

        for step in self.route.steps:
            if step.phase is Phase.FORWARD:
                ws = self._forward_step(step, ctx)
            else:
                ws = self._backward_step(step, ctx, optimizer)
            high = self.allocator.used_bytes
            # frees scheduled after this step
            if cfg.use_liveness:
                for t in self.plan.frees(step.index):
                    if any(p.tensor is t for p in self._pending):
                        continue  # eager offload in flight; reap handles it
                    self._discard(t)
            self.engine.after_step(step.index)
            # prefetch-ahead (paper §3.3.1): start the H2D fetch of the
            # next backward step's host-resident reads so it overlaps
            # this step's compute.  One-step lookahead rather than the
            # paper's conv-to-conv horizon, issued after this step's
            # frees: identical overlap on the timeline (the copy starts
            # at the same compute timestamp), but tensors land
            # just-in-time so the measured peak stays at l_peak — which
            # the paper's own Fig. 10c peak (exactly max(l_i)) requires.
            if cfg.use_offload and step.phase is Phase.BACKWARD:
                self._prefetch_ahead(step)
            traces.append(StepTrace(
                index=step.index,
                label=f"{step.layer.name}:{step.phase.value[0]}",
                phase=step.phase.value,
                used_high=high,
                used_settled=self.allocator.used_bytes,
                activation_high=high - self.param_bytes,
                activation_settled=self.allocator.used_bytes - self.param_bytes,
                live_tensors=len(self._live),
                workspace=ws,
            ))

        # iteration barrier: drain copies, free whatever is left
        while self._pending:
            self._force_reap_one()
        self.timeline.sync_all()
        self._end_of_iteration_cleanup()

        loss = None
        ll = self.net.loss_layer
        if ll is not None:
            loss = ll.last_loss
        return IterationResult(
            iteration=iteration,
            loss=loss,
            sim_time=self.timeline.elapsed - t0,
            peak_bytes=self.allocator.peak_bytes,
            activation_peak_bytes=self.allocator.peak_bytes - self.param_bytes,
            param_bytes=self.param_bytes,
            traces=traces,
            d2h_bytes=self.dma.stats.d2h_bytes - d2h0,
            h2d_bytes=self.dma.stats.h2d_bytes - h2d0,
            alloc_calls=self.allocator.stats.calls - calls0,
            alloc_overhead=self.allocator.stats.overhead_seconds - ovh0,
            extra_forwards=self.engine.extra_forwards - extra0,
            stall_seconds=self._stall - stall0,
            cache_hits=self.cache.hits - hits0,
            cache_misses=self.cache.misses - miss0,
            cache_evictions=self.cache.evictions - ev0,
            workspace_choices=self.selector.choices[ws_start:],
        )

    def _end_of_iteration_cleanup(self) -> None:
        leftovers = [
            t for l in self.net.layers
            for t in ([l.output, l.grad_output] + l.param_grads)
            if t is not None and t.tensor_id in self._alloc_of
        ]
        for t in leftovers:
            self._discard(t)
        hosted = [
            t for l in self.net.layers
            for t in [l.output]
            if t is not None and t.host_resident
        ]
        for t in hosted:
            self._discard(t)
        residual = self.allocator.used_bytes - self.param_bytes
        if residual != 0:
            raise RuntimeError(
                f"iteration leaked {residual} bytes beyond parameters"
            )

    # -- forward -----------------------------------------------------------------
    def _forward_step(self, step: Step, ctx: LayerContext) -> Optional[WorkspaceChoice]:
        layer = step.layer
        self._reap_offloads()
        reads = self.route.forward_reads(layer)
        for t in reads:
            self._make_gpu_resident(t)
            t.lock()
        self._gpu_alloc_tensor(layer.output)
        layer.output.lock()

        ws_choice: Optional[WorkspaceChoice] = None
        ws_alloc: Optional[Allocation] = None
        duration: float
        if isinstance(layer, Conv2D):
            ws_choice = self.selector.select(
                layer, self.allocator.free_bytes, "forward"
            )
            if ws_choice.assigned_ws > 0:
                try:
                    ws_alloc = self.allocator.alloc(
                        ws_choice.assigned_ws, tag=f"ws:{layer.name}"
                    )
                except OutOfMemoryError:
                    # fragmentation: fall back to the zero-workspace algo
                    ws_choice = WorkspaceChoice(
                        layer.name, "forward",
                        layer.algorithms(self.model)[0],
                        self.allocator.free_bytes,
                        ws_choice.max_speed_algo,
                    )
                    self.selector.choices[-1] = ws_choice
            duration = layer.sim_time_forward(self.model, ws_choice.algo)
        else:
            duration = layer.sim_time_forward(self.model)

        ev = self.timeline.submit(Stream.COMPUTE, duration, f"fw:{layer.name}")

        if self.concrete:
            ins = [self.store.get_required(p.output) for p in layer.prev]
            out = layer.forward(ins, ctx)
            self.store.put(layer.output, out)
            if hasattr(layer, "update_running_stats") and ctx.training:
                layer.update_running_stats(ins[0])

        if ws_alloc is not None:
            self.allocator.free(ws_alloc)
        for t in reads:
            t.unlock()
        layer.output.unlock()

        if (
            self.config.use_offload
            and not self.config.use_tensor_cache
            and layer.ltype in self.config.offload_types
        ):
            self._offload_async(layer.output, after=[ev])
        return ws_choice

    # -- backward -------------------------------------------------------------------
    def _backward_step(
        self, step: Step, ctx: LayerContext, optimizer
    ) -> Optional[WorkspaceChoice]:
        layer = step.layer
        self._reap_offloads()
        if isinstance(layer, DataLayer):
            return None

        fw_needed = self.route.backward_reads(layer)
        missing = [t for t in fw_needed if not t.is_live]
        if missing:
            if not self.recompute_plan.enabled:
                raise RuntimeError(
                    f"backward of {layer.name} needs freed tensors "
                    f"{[t.name for t in missing]} but recomputation is off"
                )
            self.engine.ensure(missing, ctx)
        for t in fw_needed:
            self._make_gpu_resident(t)
            t.lock()

        has_grad_in = bool(layer.next)
        if has_grad_in:
            self._ensure_grad(layer.grad_output)
            layer.grad_output.lock()

        grad_targets = [p for p in layer.prev if not isinstance(p, DataLayer)]
        for p in grad_targets:
            self._ensure_grad(p.grad_output)
            p.grad_output.lock()
        for g in layer.param_grads:
            self._gpu_alloc_tensor(g)

        ws_choice: Optional[WorkspaceChoice] = None
        ws_alloc: Optional[Allocation] = None
        if isinstance(layer, Conv2D):
            ws_choice = self.selector.select(
                layer, self.allocator.free_bytes, "backward"
            )
            if ws_choice.assigned_ws > 0:
                try:
                    ws_alloc = self.allocator.alloc(
                        ws_choice.assigned_ws, tag=f"ws:{layer.name}"
                    )
                except OutOfMemoryError:
                    ws_choice = WorkspaceChoice(
                        layer.name, "backward",
                        layer.algorithms(self.model)[0],
                        self.allocator.free_bytes,
                        ws_choice.max_speed_algo,
                    )
                    self.selector.choices[-1] = ws_choice
            duration = layer.sim_time_backward(self.model, ws_choice.algo)
        else:
            duration = layer.sim_time_backward(self.model)

        self.timeline.submit(Stream.COMPUTE, duration, f"bw:{layer.name}")

        if self.concrete:
            self._backward_values(layer, ctx, optimizer)
        elif optimizer is not None:
            pass  # nothing to update without payloads

        if ws_alloc is not None:
            self.allocator.free(ws_alloc)
        for t in fw_needed:
            t.unlock()
        if has_grad_in:
            layer.grad_output.unlock()
        for p in grad_targets:
            p.grad_output.unlock()

        return ws_choice

    def _backward_values(self, layer: Layer, ctx: LayerContext, optimizer) -> None:
        ins = [
            self.store.get_required(p.output)
            if layer.needs_inputs_in_backward else None
            for p in layer.prev
        ]
        outv = (
            self.store.get_required(layer.output)
            if layer.needs_output_in_backward else None
        )
        gov = (
            self.store.get_required(layer.grad_output)
            if layer.next else None
        )
        grads_in, grads_p = layer.backward(ins, outv, gov, ctx)
        for p, gi in zip(layer.prev, grads_in):
            if isinstance(p, DataLayer) or gi is None:
                continue
            acc = self.store.get(p.grad_output)
            self.store.put(p.grad_output, acc + gi if acc is not None else gi)
        for g_t, g_v in zip(layer.param_grads, grads_p):
            self.store.put(g_t, g_v)
        if optimizer is not None:
            for p_t, g_t in zip(layer.params, layer.param_grads):
                g_v = self.store.get_required(g_t)
                layer.param_values[p_t.tensor_id] = optimizer.step_param(
                    p_t.tensor_id, layer.param_values[p_t.tensor_id], g_v
                )

    def _prefetch_ahead(self, step: Step) -> None:
        nxt = step.index + 1
        if nxt >= len(self.route.steps):
            return
        for t in self.liveness.reads_at(nxt, include_synthetic=False):
            if t.placement is Placement.HOST:
                self._prefetch_async(t)
            elif (not t.is_live
                  and t.tensor_id in self.plan.recompute_covered):
                # the next step will trigger a segment recompute; start
                # fetching its anchor now so the chain doesn't stall
                producer = self.net.layers[t.producer]
                seg = self.recompute_plan.segment_of.get(producer.layer_id)
                if seg is not None and seg.anchor.output is not None \
                        and seg.anchor.output.placement is Placement.HOST:
                    self._prefetch_async(seg.anchor.output)
