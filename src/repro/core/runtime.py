"""The SuperNeurons executor: one training iteration under a policy stack.

This is the runtime of paper §3 with the *mechanics* and the *policies*
separated.  The executor owns the substrate — device ledger, timeline,
DMA engine, allocator, tensor store — and a single step loop that walks
the execution route.  Everything the paper calls an optimization lives
in a :class:`~repro.core.policy.MemoryPolicy` dispatched through
lifecycle hooks:

* **liveness** (``LivenessPolicy``) — after every step, tensors past
  their last use are freed (plan precomputed by
  :class:`~repro.core.liveness.LivenessAnalysis`);
* **UTP offload/prefetch + tensor cache** (``OffloadCachePolicy``) —
  checkpoint outputs are copied to host on the D2H stream during the
  forward pass (eager mode) or evicted on pressure (cache mode);
  backward steps prefetch upcoming host-resident reads on H2D;
* **recomputation** (``RecomputePolicy``) — backward steps that need a
  freed recomputable tensor re-run the segment forward from its anchor;
* **dynamic workspaces** (``WorkspacePolicy``) — every conv execution
  picks the fastest algorithm whose workspace fits the bytes free.

The step loop itself contains no policy-specific branches; the stack is
resolved from the :class:`~repro.core.config.RuntimeConfig` (or passed
explicitly), so new policies are new classes, not new branches here.

The executor runs identically in concrete mode (NumPy payloads, used to
prove numerical equivalence) and simulated mode (byte/time ledger only,
used for 12 GB-scale capacity and speed benchmarks).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

import numpy as np

from repro.core.cache import TensorCache
from repro.core.config import RuntimeConfig
from repro.core.liveness import LivenessAnalysis, LivenessPlan
from repro.core.plan import (
    SCHEDULABLE_HOOKS,
    CompiledStep,
    GatheredPolicy,
    IterationPlan,
    gather_policy_plans,
    link_iteration_plan,
)
from repro.core.policy import MemoryPolicy, StepContext, resolve_policies
from repro.core.recompute import plan_segments
from repro.core.tensor_state import SessionTensorState
from repro.core.workspace import WorkspaceChoice
from repro.device.dma import CopyDirection, DMAEngine
from repro.device.fabric import MemoryFabric
from repro.device.gpu import OutOfMemoryError, SimulatedGPU
from repro.device.model import DeviceModel
from repro.device.timeline import Event, Stream, Timeline
from repro.graph.network import Net
from repro.graph.route import ExecutionRoute, Phase, Step
from repro.layers.base import Layer, LayerContext
from repro.layers.data import DataLayer
from repro.mempool.allocator import Allocation, CudaAllocator, PoolAllocator
from repro.obs import trace as obs_trace
from repro.tensors.store import ArrayStore, NullStore
from repro.tensors.tensor import Placement, Tensor, TensorKind


@dataclass
class StepTrace:
    """Byte-accurate record of one step (drives Fig. 10)."""

    index: int
    label: str
    phase: str
    used_high: int        # allocator bytes at the step's high-water point
    used_settled: int     # after the step's frees
    activation_high: int  # same minus the persistent parameter footprint
    activation_settled: int
    live_tensors: int
    workspace: Optional[WorkspaceChoice] = None


@dataclass
class IterationResult:
    """Everything one iteration reports."""

    iteration: int
    loss: Optional[float]
    sim_time: float
    peak_bytes: int
    activation_peak_bytes: int
    param_bytes: int
    traces: List[StepTrace] = field(default_factory=list)
    d2h_bytes: int = 0
    h2d_bytes: int = 0
    alloc_calls: int = 0
    alloc_overhead: float = 0.0
    extra_forwards: int = 0
    stall_seconds: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_evictions: int = 0
    workspace_choices: List[WorkspaceChoice] = field(default_factory=list)
    # terminal layer's concrete output, kept only when the iteration ran
    # with capture_output (the serving path); excluded from to_dict —
    # payloads are not JSON and the dict contract predates serving
    output: Optional[np.ndarray] = None

    @property
    def offload_traffic_bytes(self) -> int:
        return self.d2h_bytes + self.h2d_bytes

    def to_dict(self) -> dict:
        """JSON-serializable summary (traces flattened to plain dicts)."""
        ws = self.workspace_choices
        at_max = sum(1 for w in ws if w.got_max_speed)
        return {
            "iteration": self.iteration,
            "loss": self.loss,
            "sim_time": self.sim_time,
            "peak_bytes": self.peak_bytes,
            "activation_peak_bytes": self.activation_peak_bytes,
            "param_bytes": self.param_bytes,
            "d2h_bytes": self.d2h_bytes,
            "h2d_bytes": self.h2d_bytes,
            "alloc_calls": self.alloc_calls,
            "alloc_overhead": self.alloc_overhead,
            "extra_forwards": self.extra_forwards,
            "stall_seconds": self.stall_seconds,
            "cache": {"hits": self.cache_hits, "misses": self.cache_misses,
                      "evictions": self.cache_evictions},
            "workspaces": {
                "executions": len(ws),
                "at_max_speed": at_max,
                "fallbacks": len(ws) - at_max,
            },
            "traces": [
                {
                    "index": t.index,
                    "label": t.label,
                    "phase": t.phase,
                    "used_high": t.used_high,
                    "used_settled": t.used_settled,
                    "activation_high": t.activation_high,
                    "activation_settled": t.activation_settled,
                    "live_tensors": t.live_tensors,
                    "workspace": None if t.workspace is None else {
                        "layer": t.workspace.layer_name,
                        "phase": t.workspace.phase,
                        "algo": t.workspace.algo.name,
                        "assigned_ws": t.workspace.assigned_ws,
                        "max_speed_ws": t.workspace.max_speed_ws,
                    },
                }
                for t in self.traces
            ],
        }


@dataclass
class _PendingOffload:
    tensor: Tensor
    event: Event
    allocation: Allocation


class Executor:
    """Runs iterations of one network under one policy stack.

    ``Executor(net, config)`` resolves the stack from the config — the
    legacy constructor keeps working unchanged.  ``policies`` overrides
    the stack explicitly (the :class:`~repro.core.session.Session`
    builder uses this to append custom policies).

    ``mode`` selects the execution mode: ``"train"`` runs the 2N-step
    forward+backward route; ``"infer"`` runs the forward-only N-step
    route with ``training=False`` kernels, no gradient allocation, and
    the backward-bridging policies (offload, recompute) disarmed — see
    :meth:`RuntimeConfig.for_mode`.

    ``compiled`` injects a :class:`~repro.core.engine.CompiledMode`
    (shared route/liveness/recompute artifacts plus gathered policy
    plans) from a compile-once :class:`~repro.core.engine.Engine`: the
    executor then skips its own planning entirely and replays the
    linked plan from iteration 0.  ``planning`` injects only the
    pre-scout artifacts (:class:`~repro.core.engine.ModePlanning`) —
    the executor skips route/liveness/segmentation derivation but still
    records its own first iteration (the engine's scout path).

    Every piece of *mutable* per-tensor state — placement, cache locks,
    host residency, prefetch arrivals — lives in :attr:`state`, a
    :class:`~repro.core.tensor_state.SessionTensorState` owned by this
    executor alone.  Descriptors are immutable identity, so any number
    of executors can run the same net concurrently (thread-per-session;
    see :meth:`~repro.core.engine.Engine.parallel_run`).
    """

    def __init__(
        self,
        net: Net,
        config: Optional[RuntimeConfig] = None,
        policies: Optional[Sequence[MemoryPolicy]] = None,
        mode: str = "train",
        compiled=None,
        planning=None,
    ):
        self.net = net.build()
        base_config = config or RuntimeConfig()
        self.mode = mode
        self.config = base_config.for_mode(mode)  # validates the mode
        self.training = mode == "train"
        cfg = self.config
        self.concrete = cfg.concrete
        self.model: DeviceModel = cfg.device

        self.gpu = SimulatedGPU(self.model)
        if cfg.gpu_capacity is not None:
            self.gpu.capacity = cfg.gpu_capacity
        # observability: cfg.trace=True arms the process tracer here;
        # cfg.trace=False suppresses this executor's hooks entirely
        # (the hook-free control arm of the overhead gate); None defers
        # to env/global arming, checked per iteration at one global
        # load.  With tracing on at build time the timeline keeps a
        # *bounded* op log so the exporter can draw the stream overlap;
        # otherwise no op records — the per-op log would grow without
        # bound across iterations (introspection uses traces/stats).
        obs_trace.resolve_arm(cfg.trace, cfg.trace_limit)
        self._obs_enabled = cfg.trace is not False
        record_ops = bool(cfg.trace) or \
            (cfg.trace is None and obs_trace.armed())
        self.timeline = Timeline(
            record_ops=record_ops,
            max_ops=obs_trace.TIMELINE_OPS_LIMIT if record_ops else None)
        self.dma = DMAEngine(self.timeline, self.model, pinned=cfg.pinned_host)
        self.fabric = MemoryFabric(cfg.external_pools,
                                   pinned=cfg.pinned_host)
        if cfg.use_pool_allocator:
            self.allocator = PoolAllocator(
                self.gpu, self.timeline, slab_bytes=cfg.pool_slab_bytes
            )
        else:
            self.allocator = CudaAllocator(self.gpu, self.timeline)
        self.store = ArrayStore() if self.concrete else NullStore()

        if compiled is not None and planning is not None:
            raise TypeError("pass either compiled or planning, not both")
        artifacts = compiled if compiled is not None else planning
        if artifacts is not None:
            if artifacts.mode != mode:
                raise ValueError(
                    f"compiled artifacts are for mode {artifacts.mode!r}, "
                    f"executor runs {mode!r}"
                )
            # engine workers share the read-only planning artifacts
            self.route = artifacts.route
            self.recompute_plan = artifacts.recompute_plan
            self.liveness = artifacts.liveness
            self.plan: LivenessPlan = artifacts.liveness_plan
        else:
            self.route = ExecutionRoute(self.net, training=self.training)
            self.recompute_plan = plan_segments(
                self.route, cfg.recompute, self.net.max_layer_bytes()
            )
            self.liveness = LivenessAnalysis(self.route, cfg,
                                             self.recompute_plan)
            self.plan = self.liveness.compile()
        self._precompiled = compiled

        # ALL executor-mutated tensor state is session-local: this table
        # (placement, locks, host residency, arrivals, live set) is what
        # lets N executors share one net's descriptors concurrently.
        # validate=None defers to REPRO_VALIDATE_STATE, so test/CI
        # processes arm the placement state machine for every session.
        self.state = SessionTensorState(validate=cfg.validate_state)

        # the policy stack (ordered; dispatch order is semantic)
        self.policies: List[MemoryPolicy] = (
            list(policies) if policies is not None else resolve_policies(cfg)
        )
        self._ctx = StepContext(self)
        self._offload_policy = self._find_policy("offload")
        self._recompute_policy = self._find_policy("recompute")
        self._workspace_policy = self._find_policy("workspace")
        self._fallback_cache: Optional[TensorCache] = None
        self._fallback_recompute: Optional[MemoryPolicy] = None
        for p in self.policies:
            p.bind(self._ctx)

        # hook listener tables: per hook, the bound methods of the
        # policies that actually override it, in stack order — a hook
        # nobody implements costs one empty-tuple loop, not a full
        # stack walk
        self._listeners = self._build_listener_table()
        self._active_listeners = self._listeners
        self._replay_listeners: Optional[Dict[str, tuple]] = None

        # steady-state replay state
        self._replay_enabled = cfg.steady_state_replay
        self._collect_traces = cfg.collect_traces
        self._iteration_plan: Optional[IterationPlan] = None
        self._fresh_iterations = 0
        self.replayed_iterations = 0

        # runtime state
        self._alloc_of: Dict[int, Allocation] = {}
        self._pending: List[_PendingOffload] = []
        self._stall = 0.0
        self.param_bytes = 0
        self._allocate_params()
        # static end-of-iteration sweep candidates (tensors are fixed
        # objects per net; membership in _alloc_of is what varies)
        self._cleanup_tensors = [
            t for l in self.net.layers
            for t in ([l.output, l.grad_output] + l.param_grads)
            if t is not None
        ]
        self._hosted_candidates = [
            l.output for l in self.net.layers if l.output is not None
        ]

    # -------------------------------------------------------------- policies
    def _find_policy(self, key: str) -> Optional[MemoryPolicy]:
        for p in self.policies:
            if p.key == key:
                return p
        return None

    _DISPATCH_HOOKS = SCHEDULABLE_HOOKS + (
        "on_iteration_start", "on_iteration_end", "on_backward_need",
    )

    @staticmethod
    def _overrides(p: MemoryPolicy, hook: str) -> bool:
        return getattr(type(p), hook) is not getattr(MemoryPolicy, hook)

    def _build_listener_table(
        self, skip_hooks: Optional[Dict[int, Set[str]]] = None
    ) -> Dict[str, tuple]:
        """Bound-method dispatch lists; ``skip_hooks`` maps a policy id
        to the schedulable hooks compiled away for it (demand hooks and
        iteration brackets always keep every overrider)."""
        table: Dict[str, tuple] = {}
        skip_hooks = skip_hooks or {}
        for hook in self._DISPATCH_HOOKS:
            fns = []
            for p in self.policies:
                if hook in skip_hooks.get(id(p), ()):
                    continue
                if self._overrides(p, hook):
                    fns.append(getattr(p, hook))
            table[hook] = tuple(fns)
        return table

    def _dispatch(self, hook: str, *args) -> None:
        ctx = self._ctx
        for fn in self._active_listeners[hook]:
            fn(ctx, *args)

    @property
    def cache(self) -> TensorCache:
        """The offload policy's tensor cache (dormant one otherwise)."""
        if self._offload_policy is not None:
            return self._offload_policy.cache
        if self._fallback_cache is None:
            # bound to this session's state so evict_for on the dormant
            # cache stays a harmless no-op instead of raising unbound
            self._fallback_cache = TensorCache(state=self.state)
        return self._fallback_cache

    @property
    def selector(self):
        """The workspace policy's per-execution choice recorder."""
        return self._workspace_policy.selector \
            if self._workspace_policy is not None else None

    @property
    def engine(self) -> MemoryPolicy:
        """Compatibility alias for the recomputation policy.

        Always an object (a dormant, never-dispatched policy when
        recomputation is off), so legacy ``ex.engine.extra_forwards``
        reads keep returning 0 as they did with the old engine.
        """
        if self._recompute_policy is not None:
            return self._recompute_policy
        if self._fallback_recompute is None:
            from repro.core.policy import RecomputePolicy
            self._fallback_recompute = RecomputePolicy.from_config(self.config)
        return self._fallback_recompute

    def _cache_counters(self):
        if self._offload_policy is None:
            return 0, 0, 0
        c = self._offload_policy.cache
        return c.hits, c.misses, c.evictions

    def _extra_forwards(self) -> int:
        return self._recompute_policy.extra_forwards \
            if self._recompute_policy is not None else 0

    def _workspace_choices(self) -> List[WorkspaceChoice]:
        return self.selector.choices if self.selector is not None else []

    # -------------------------------------------------------- observability
    def register_metrics(self, registry, prefix: str) -> None:
        """Register this executor's counting surfaces as probes on a
        :class:`~repro.obs.metrics.MetricsRegistry` — the owning
        subsystems keep their own locks; the probes read lazily at
        ``collect()`` time, so registration adds no hot-path cost."""
        registry.probe(f"{prefix}.allocator", lambda: {
            "allocs": self.allocator.stats.allocs,
            "frees": self.allocator.stats.frees,
            "alloc_bytes": self.allocator.stats.alloc_bytes,
            "overhead_seconds": self.allocator.stats.overhead_seconds,
            "peak_bytes": self.allocator.peak_bytes,
        })
        registry.probe(f"{prefix}.cache", lambda: dict(zip(
            ("hits", "misses", "evictions"), self._cache_counters())))
        registry.probe(f"{prefix}.timeline", lambda: {
            "elapsed": self.timeline.elapsed,
            **{s.value: self.timeline.busy_time(s) for s in Stream},
        })
        registry.probe(f"{prefix}.dma", lambda: {
            "d2h_bytes": self.dma.stats.d2h_bytes,
            "h2d_bytes": self.dma.stats.h2d_bytes,
        })

    # ------------------------------------------------------------------ params
    def _allocate_params(self) -> None:
        state = self.state
        for layer in self.net.layers:
            for p in layer.params:
                a = self.allocator.alloc(p.nbytes, tag=p.name)
                self._alloc_of[p.tensor_id] = a
                state.set_placement(p, Placement.GPU)
                state.lock(p)  # params are never evictable
                self.param_bytes += p.nbytes

    def close(self) -> None:
        """Free everything (tests create many executors)."""
        for tid, a in list(self._alloc_of.items()):
            self.allocator.free(a)
        self._alloc_of.clear()
        if isinstance(self.allocator, PoolAllocator):
            self.allocator.close()

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------- allocation
    def _gpu_alloc_tensor(self, t: Tensor) -> Allocation:
        """Allocate GPU bytes for ``t``, reaping/evicting under pressure."""
        if t.tensor_id in self._alloc_of:
            return self._alloc_of[t.tensor_id]
        try:  # fast path first: pressure handling costs a call per alloc
            a = self.allocator.alloc(t.nbytes, t.name)
        except OutOfMemoryError:
            a = self._alloc_under_pressure(t.nbytes, t.name)
        self._alloc_of[t.tensor_id] = a
        self.state.set_placement(t, Placement.GPU)
        kind = t.kind
        if kind is TensorKind.DATA or kind is TensorKind.GRAD:
            self.state.add_live(t)
        if self._active_listeners["on_tensor_resident"]:
            self._dispatch("on_tensor_resident", t, "alloc")
        return a

    def _try_alloc(self, nbytes: int, tag: str) -> Allocation:
        try:
            return self.allocator.alloc(nbytes, tag)
        except OutOfMemoryError:
            return self._alloc_under_pressure(nbytes, tag)

    def _alloc_under_pressure(self, nbytes: int, tag: str) -> Allocation:
        """The slow path: each policy in stack order may free bytes."""
        def retry() -> Optional[Allocation]:
            try:
                return self.allocator.alloc(nbytes, tag)
            except OutOfMemoryError:
                return None

        for p in self.policies:
            a = p.on_memory_pressure(self._ctx, nbytes, tag, retry)
            if a is not None:
                return a
        raise OutOfMemoryError(nbytes, self.allocator.free_bytes,
                               self.gpu.capacity)

    def _free_gpu_only(self, t: Tensor) -> None:
        """Drop the GPU copy; host copy (if any) keeps the tensor live."""
        state = self.state
        a = self._alloc_of.pop(t.tensor_id, None)
        if a is not None:
            self.allocator.free(a)
        if self._active_listeners["on_tensor_released"]:
            self._dispatch("on_tensor_released", t)
        if state.host_resident(t):
            # keep the bytes: they may still be device-side if the D2H
            # copy that made the host reservation has not been reaped
            self.store.move_to_host(t)
            state.set_placement(t, Placement.HOST)
        else:
            self.store.drop_device(t)
            state.set_placement(t, Placement.FREED)
        if not state.is_live(t):
            state.discard_live(t)

    def _discard(self, t: Tensor) -> None:
        """Free a tensor everywhere (GPU, host, payloads)."""
        if t.kind is TensorKind.PARAM:
            return
        state = self.state
        a = self._alloc_of.pop(t.tensor_id, None)
        if a is not None:
            self.allocator.free(a)
        if self._active_listeners["on_tensor_dead"]:
            self._dispatch("on_tensor_dead", t)
        if state.host_resident(t):
            self.fabric.evict(t.tensor_id)
            state.set_host_resident(t, False)
        self.store.drop(t)
        if state.any_arrivals:
            state.pop_arrival(t)
        state.set_placement(t, Placement.FREED)
        state.discard_live(t)

    # ---------------------------------------------------------------- movement
    def _evict_to_host(self, t: Tensor) -> int:
        """Synchronous offload used by LRU eviction; returns bytes freed."""
        pool = self.fabric.stash(t.tensor_id, t.nbytes)
        ev = self.dma.copy_async(t.nbytes, CopyDirection.D2H,
                                 label=f"evict:{t.name}",
                                 rate_scale=pool.d2h_scale)
        self._stall += self.timeline.sync(Stream.COMPUTE, ev)
        self.state.set_host_resident(t, True)
        self.store.move_to_host(t)
        a = self._alloc_of.pop(t.tensor_id, None)
        freed = 0
        if a is not None:
            self.allocator.free(a)
            freed = a.nbytes
        self.state.set_placement(t, Placement.HOST)
        return freed

    def _offload_async(self, t: Tensor, after: Optional[List[Event]] = None) -> None:
        """Eager UTP offload: D2H overlaps following forward compute."""
        pool = self.fabric.stash(t.tensor_id, t.nbytes)
        ev = self.dma.copy_async(t.nbytes, CopyDirection.D2H,
                                 label=f"offload:{t.name}", after=after,
                                 rate_scale=pool.d2h_scale)
        self.state.set_host_resident(t, True)
        a = self._alloc_of.get(t.tensor_id)
        if a is None:
            return
        self._pending.append(_PendingOffload(t, ev, a))

    def _reap_offloads(self) -> None:
        """Free GPU copies whose D2H transfer has completed by now."""
        if not self._pending:
            return
        now = self.timeline.now(Stream.COMPUTE)
        remaining: List[_PendingOffload] = []
        for p in self._pending:
            if p.event.time <= now:
                self._complete_offload(p)
            else:
                remaining.append(p)
        self._pending = remaining

    def _force_reap_one(self) -> None:
        p = self._pending.pop(0)
        self._stall += self.timeline.sync(Stream.COMPUTE, p.event)
        self._complete_offload(p)

    def _complete_offload(self, p: _PendingOffload) -> None:
        t = p.tensor
        a = self._alloc_of.pop(t.tensor_id, None)
        if a is not None:
            self.allocator.free(a)
        self.store.move_to_host(t)
        if self._active_listeners["on_tensor_released"]:
            self._dispatch("on_tensor_released", t)
        self.state.set_placement(t, Placement.HOST)

    def _prefetch_async(self, t: Tensor) -> bool:
        """Start bringing a host tensor back; returns False if no room."""
        state = self.state
        if not state.on_host(t) or state.arrival_pending(t):
            return state.arrival_pending(t)
        try:
            a = self.allocator.alloc(t.nbytes, tag=f"prefetch:{t.name}")
        except OutOfMemoryError:
            return False
        self._alloc_of[t.tensor_id] = a
        pool = self.fabric.pool_of(t.tensor_id)
        ev = self.dma.copy_async(t.nbytes, CopyDirection.H2D,
                                 label=f"prefetch:{t.name}",
                                 rate_scale=pool.h2d_scale if pool else 1.0)
        state.set_arrival(t, ev)
        state.set_placement(t, Placement.GPU)
        self.store.move_to_gpu(t)
        if self._active_listeners["on_tensor_resident"]:
            self._dispatch("on_tensor_resident", t, "prefetch")
        return True

    def _make_gpu_resident(self, t: Tensor) -> None:
        """Block until ``t`` is usable on the GPU."""
        state = self.state
        placement = state.placement(t)
        if placement is Placement.GPU:
            if state.any_arrivals:
                ev = state.pop_arrival(t)
                if ev is not None:
                    self._stall += self.timeline.sync(Stream.COMPUTE, ev)
            if self._active_listeners["on_tensor_access"]:
                self._dispatch("on_tensor_access", t)
            return
        if placement is Placement.HOST:
            a = self._gpu_alloc_tensor(t)  # may evict/reap
            pool = self.fabric.pool_of(t.tensor_id)
            ev = self.dma.copy_async(
                t.nbytes, CopyDirection.H2D, label=f"fetch:{t.name}",
                rate_scale=pool.h2d_scale if pool else 1.0)
            self._stall += self.timeline.sync(Stream.COMPUTE, ev)
            self.store.move_to_gpu(t)
            state.set_placement(t, Placement.GPU)
            return
        raise RuntimeError(
            f"tensor {t.name} is {placement.value}; cannot make resident"
        )

    # ------------------------------------------------------------------- grads
    def _ensure_grad(self, t: Tensor) -> None:
        if t.tensor_id in self._alloc_of:
            return
        self._gpu_alloc_tensor(t)
        if self.concrete:
            self.store.put(t, np.zeros(t.shape, dtype=np.float32))

    # ------------------------------------------------- steady-state replay
    @property
    def iteration_plan(self) -> Optional[IterationPlan]:
        """The compiled replay plan (None until one steady-state
        iteration has been requested after a fresh recording one)."""
        return self._iteration_plan

    def invalidate_plan(self) -> None:
        """Drop the compiled plan; the next iteration records afresh
        (a precompiled engine plan is dropped too)."""
        self._iteration_plan = None
        self._replay_listeners = None
        self._precompiled = None
        self._fresh_iterations = 0  # require a new recording iteration

    def _compile_plan(self) -> None:
        self._install_plan(gather_policy_plans(self))

    def _install_plan(self, gathered: Sequence[GatheredPolicy]) -> None:
        """Link gathered policy plans (own or engine-shared) and derive
        the replay dispatch tables."""
        self._iteration_plan = link_iteration_plan(self, gathered)
        schedulable = set(SCHEDULABLE_HOOKS)
        skip_hooks: Dict[int, Set[str]] = {}
        for p, g in zip(self.policies, gathered):
            if not g.stable:
                continue  # dynamic: keeps every hook
            keep = set(g.plan.keep_hooks) if g.plan is not None else set()
            skip_hooks[id(p)] = schedulable - keep
        self._replay_listeners = self._build_listener_table(skip_hooks)

    # ------------------------------------------------------------------ stepping
    def run_iteration(
        self,
        iteration: int = 0,
        optimizer=None,
        feed: Optional[np.ndarray] = None,
        capture_output: bool = False,
    ) -> IterationResult:
        """Run one iteration.

        ``feed`` replaces the data layer's provider batch with a
        caller-supplied one (must match the compiled input shape);
        ``capture_output`` keeps the terminal layer's concrete output on
        the returned :attr:`IterationResult.output`.  Both serve the
        :mod:`repro.serve` request path and ride the per-session
        :class:`~repro.layers.base.LayerContext`, so concurrent
        sessions feed independently.
        """
        if optimizer is not None and not self.training:
            raise TypeError(
                "infer mode runs no backward pass, so the optimizer "
                "would never step; drop it or use a train-mode session")
        # the per-iteration obs hook: disarmed (trace=None, no tracer)
        # costs one attribute load + one global load + `is None`;
        # trace=False short-circuits even that (the control arm the
        # bench_steady_state overhead gate compares against)
        tracer = obs_trace.ACTIVE if self._obs_enabled else None
        wall0 = tracer.clock() if tracer is not None else 0.0
        ctx = self._ctx
        replaying = False
        if self._replay_enabled:
            if self._iteration_plan is None:
                if self._fresh_iterations:
                    self._compile_plan()
                elif self._precompiled is not None:
                    # engine worker: link the shared plan, replay from
                    # iteration 0 — no recording iteration needed
                    self._install_plan(self._precompiled.gathered)
            replaying = self._iteration_plan is not None
        self._active_listeners = (
            self._replay_listeners if replaying else self._listeners
        )
        ctx._begin_iteration(iteration, LayerContext(
            iteration=iteration, training=self.training,
            feed=feed, capture_final=capture_output))
        self._dispatch("on_iteration_start")
        self.allocator.reset_peak()
        t0 = self.timeline.elapsed
        d2h0, h2d0 = self.dma.stats.d2h_bytes, self.dma.stats.h2d_bytes
        calls0 = self.allocator.stats.calls
        ovh0 = self.allocator.stats.overhead_seconds
        hits0, miss0, ev0 = self._cache_counters()
        extra0 = self._extra_forwards()
        stall0 = self._stall
        ws_start = len(self._workspace_choices())

        if replaying:
            traces = self._replay_steps(ctx, optimizer)
            self.replayed_iterations += 1
        else:
            traces = self._fresh_steps(ctx, optimizer)
            self._fresh_iterations += 1

        # iteration barrier: drain copies, free whatever is left
        self._dispatch("on_iteration_end")
        while self._pending:
            self._force_reap_one()
        self.timeline.sync_all()
        self._end_of_iteration_cleanup()

        # the loss travels through the per-session LayerContext (shared
        # SoftmaxLoss objects would race under concurrent sessions)
        loss = ctx.layer_ctx.last_loss
        hits1, miss1, ev1 = self._cache_counters()
        if tracer is not None:
            tracer.emit(
                "iteration", cat="engine", start=wall0,
                end=tracer.clock(),
                attrs={"net": self.net.name, "mode": self.mode,
                       "iteration": iteration, "replayed": replaying,
                       "sim_time": round(self.timeline.elapsed - t0, 9),
                       "peak_bytes": self.allocator.peak_bytes})
        return IterationResult(
            iteration=iteration,
            loss=loss,
            sim_time=self.timeline.elapsed - t0,
            peak_bytes=self.allocator.peak_bytes,
            activation_peak_bytes=self.allocator.peak_bytes - self.param_bytes,
            param_bytes=self.param_bytes,
            traces=traces,
            d2h_bytes=self.dma.stats.d2h_bytes - d2h0,
            h2d_bytes=self.dma.stats.h2d_bytes - h2d0,
            alloc_calls=self.allocator.stats.calls - calls0,
            alloc_overhead=self.allocator.stats.overhead_seconds - ovh0,
            extra_forwards=self._extra_forwards() - extra0,
            stall_seconds=self._stall - stall0,
            cache_hits=hits1 - hits0,
            cache_misses=miss1 - miss0,
            cache_evictions=ev1 - ev0,
            workspace_choices=self._workspace_choices()[ws_start:],
            output=ctx.layer_ctx.final_output,
        )

    def _fresh_steps(self, ctx: StepContext, optimizer) -> List[StepTrace]:
        """The recording path: full hook dispatch, decisions re-derived."""
        traces: List[StepTrace] = []
        collect = self._collect_traces
        for step in self.route.steps:
            ctx._begin_step(step)
            self._dispatch("before_step", step)
            if step.phase is Phase.FORWARD:
                ws = self._forward_step(step, ctx)
            else:
                ws = self._backward_step(step, ctx, optimizer)
            high = self.allocator.used_bytes
            # reclamation: eager-offload registration, liveness frees,
            # recompute cleanup — in stack order — then the settled hook
            # (prefetch-ahead) once the frees have landed
            self._dispatch("after_step", step)
            self._dispatch("on_step_settled", step)
            if collect:
                traces.append(StepTrace(
                    index=step.index,
                    label=f"{step.layer.name}:{step.phase.value[0]}",
                    phase=step.phase.value,
                    used_high=high,
                    used_settled=self.allocator.used_bytes,
                    activation_high=high - self.param_bytes,
                    activation_settled=self.allocator.used_bytes
                    - self.param_bytes,
                    live_tensors=self.state.live_count(),
                    workspace=ws,
                ))
        return traces

    def _replay_steps(self, ctx: StepContext, optimizer) -> List[StepTrace]:
        """The steady-state path: compiled actions, no stable-policy
        dispatch, bit-identical mechanics."""
        traces: List[StepTrace] = []
        collect = self._collect_traces
        allocator = self.allocator
        param_bytes = self.param_bytes
        for cs in self._iteration_plan.steps:
            step = cs.step
            ctx._begin_step(step)
            for fn in cs.before_ops:
                fn(ctx, step)
            if cs.is_forward:
                ws = self._replay_forward(cs, ctx)
            else:
                ws = self._replay_backward(cs, ctx, optimizer)
            high = allocator.used_bytes
            for fn in cs.after_ops:
                fn(ctx, step)
            for fn in cs.settled_ops:
                fn(ctx, step)
            if collect:
                settled = allocator.used_bytes
                traces.append(StepTrace(
                    index=step.index,
                    label=cs.trace_label,
                    phase=cs.phase_value,
                    used_high=high,
                    used_settled=settled,
                    activation_high=high - param_bytes,
                    activation_settled=settled - param_bytes,
                    live_tensors=self.state.live_count(),
                    workspace=ws,
                ))
        return traces

    def _replay_forward(self, cs: CompiledStep, ctx: StepContext
                        ) -> Optional[WorkspaceChoice]:
        layer = cs.layer
        state = self.state
        for t in cs.reads:
            self._make_gpu_resident(t)
            state.lock(t)
        out = cs.output
        self._gpu_alloc_tensor(out)
        state.lock(out)

        for fn in cs.compute_ops:
            fn(ctx, cs.step)
        duration = ctx.step_duration if ctx.step_duration is not None \
            else cs.duration
        ev = self.timeline.submit(Stream.COMPUTE, duration, cs.submit_label)
        ctx.last_compute_event = ev

        if self.concrete:
            ins = [self.store.get_required(p.output) for p in layer.prev]
            val = layer.forward(ins, ctx.layer_ctx)
            self.store.put(out, val)
            if cs.has_running_stats and ctx.layer_ctx.training:
                layer.update_running_stats(ins[0])
            if ctx.layer_ctx.capture_final and not layer.next:
                ctx.layer_ctx.final_output = self.store.get_required(out)

        self._free_step_scratch(ctx)
        for t in cs.reads:
            state.unlock(t)
        state.unlock(out)
        return ctx.step_workspace

    def _replay_backward(self, cs: CompiledStep, ctx: StepContext, optimizer
                         ) -> Optional[WorkspaceChoice]:
        if cs.is_data:
            return None
        layer = cs.layer
        state = self.state
        missing = [t for t in cs.reads if not state.is_live(t)]
        if missing:
            self._dispatch("on_backward_need", cs.step, missing)
            still = [t for t in missing if not state.is_live(t)]
            if still:
                raise RuntimeError(
                    f"backward of {layer.name} needs freed tensors "
                    f"{[t.name for t in still]} but recomputation is off"
                )
        for t in cs.reads:
            self._make_gpu_resident(t)
            state.lock(t)

        if cs.has_grad_in:
            self._ensure_grad(layer.grad_output)
            state.lock(layer.grad_output)
        for p in cs.grad_targets:
            self._ensure_grad(p.grad_output)
            state.lock(p.grad_output)
        for g in cs.param_grads:
            self._gpu_alloc_tensor(g)

        for fn in cs.compute_ops:
            fn(ctx, cs.step)
        duration = ctx.step_duration if ctx.step_duration is not None \
            else cs.duration
        ev = self.timeline.submit(Stream.COMPUTE, duration, cs.submit_label)
        ctx.last_compute_event = ev

        if self.concrete:
            self._backward_values(layer, ctx.layer_ctx, optimizer)

        self._free_step_scratch(ctx)
        for t in cs.reads:
            state.unlock(t)
        if cs.has_grad_in:
            state.unlock(layer.grad_output)
        for p in cs.grad_targets:
            state.unlock(p.grad_output)
        return ctx.step_workspace

    def _end_of_iteration_cleanup(self) -> None:
        state = self.state
        for t in self._cleanup_tensors:
            if t.tensor_id in self._alloc_of:
                self._discard(t)
        for t in self._hosted_candidates:
            if state.host_resident(t):
                self._discard(t)
        # prefetch arrival events are all complete after the barrier;
        # drop them so no stale entry can satisfy a later iteration's
        # in-flight check without a copy actually running
        state.clear_arrivals()
        residual = self.allocator.used_bytes - self.param_bytes
        if residual != 0:
            raise RuntimeError(
                f"iteration leaked {residual} bytes beyond parameters"
            )

    # -- step mechanics (policy-free) -----------------------------------------
    def _free_step_scratch(self, ctx: StepContext) -> None:
        for a in ctx._scratch:
            self.allocator.free(a)
        ctx._scratch.clear()

    def _forward_step(self, step: Step, ctx: StepContext
                      ) -> Optional[WorkspaceChoice]:
        layer = step.layer
        state = self.state
        reads = self.route.forward_reads(layer)
        for t in reads:
            self._make_gpu_resident(t)
            state.lock(t)
        self._gpu_alloc_tensor(layer.output)
        state.lock(layer.output)

        self._dispatch("before_compute", step)
        duration = ctx.step_duration if ctx.step_duration is not None \
            else layer.sim_time_forward(self.model)
        ev = self.timeline.submit(Stream.COMPUTE, duration, f"fw:{layer.name}")
        ctx.last_compute_event = ev

        if self.concrete:
            ins = [self.store.get_required(p.output) for p in layer.prev]
            out = layer.forward(ins, ctx.layer_ctx)
            self.store.put(layer.output, out)
            if hasattr(layer, "update_running_stats") and ctx.layer_ctx.training:
                layer.update_running_stats(ins[0])
            if ctx.layer_ctx.capture_final and not layer.next:
                ctx.layer_ctx.final_output = \
                    self.store.get_required(layer.output)

        self._free_step_scratch(ctx)
        for t in reads:
            state.unlock(t)
        state.unlock(layer.output)
        return ctx.step_workspace

    def _backward_step(
        self, step: Step, ctx: StepContext, optimizer
    ) -> Optional[WorkspaceChoice]:
        layer = step.layer
        if isinstance(layer, DataLayer):
            return None

        state = self.state
        fw_needed = self.route.backward_reads(layer)
        missing = [t for t in fw_needed if not state.is_live(t)]
        if missing:
            self._dispatch("on_backward_need", step, missing)
            still = [t for t in missing if not state.is_live(t)]
            if still:
                raise RuntimeError(
                    f"backward of {layer.name} needs freed tensors "
                    f"{[t.name for t in still]} but recomputation is off"
                )
        for t in fw_needed:
            self._make_gpu_resident(t)
            state.lock(t)

        has_grad_in = bool(layer.next)
        if has_grad_in:
            self._ensure_grad(layer.grad_output)
            state.lock(layer.grad_output)

        grad_targets = [p for p in layer.prev if not isinstance(p, DataLayer)]
        for p in grad_targets:
            self._ensure_grad(p.grad_output)
            state.lock(p.grad_output)
        for g in layer.param_grads:
            self._gpu_alloc_tensor(g)

        self._dispatch("before_compute", step)
        duration = ctx.step_duration if ctx.step_duration is not None \
            else layer.sim_time_backward(self.model)
        ev = self.timeline.submit(Stream.COMPUTE, duration, f"bw:{layer.name}")
        ctx.last_compute_event = ev

        if self.concrete:
            self._backward_values(layer, ctx.layer_ctx, optimizer)

        self._free_step_scratch(ctx)
        for t in fw_needed:
            state.unlock(t)
        if has_grad_in:
            state.unlock(layer.grad_output)
        for p in grad_targets:
            state.unlock(p.grad_output)

        return ctx.step_workspace

    def _backward_values(self, layer: Layer, ctx: LayerContext, optimizer) -> None:
        ins = [
            self.store.get_required(p.output)
            if layer.needs_inputs_in_backward else None
            for p in layer.prev
        ]
        outv = (
            self.store.get_required(layer.output)
            if layer.needs_output_in_backward else None
        )
        gov = (
            self.store.get_required(layer.grad_output)
            if layer.next else None
        )
        grads_in, grads_p = layer.backward(ins, outv, gov, ctx)
        for p, gi in zip(layer.prev, grads_in):
            if isinstance(p, DataLayer) or gi is None:
                continue
            acc = self.store.get(p.grad_output)
            self.store.put(p.grad_output, acc + gi if acc is not None else gi)
        for g_t, g_v in zip(layer.param_grads, grads_p):
            self.store.put(g_t, g_v)
        if optimizer is not None:
            for p_t, g_t in zip(layer.params, layer.param_grads):
                g_v = self.store.get_required(g_t)
                layer.param_values[p_t.tensor_id] = optimizer.step_param(
                    p_t.tensor_id, layer.param_values[p_t.tensor_id], g_v
                )
