"""Flight recorder: a bounded ring of recent events, dumped on trouble.

Serving failures are interleaving-dependent: by the time a worker crash
or a shed storm surfaces, the interesting history is gone.  The
recorder keeps a cheap ring of recent notes (``deque(maxlen=...)``
appends, a leaf lock) that subsystems feed unconditionally — it is
always on, because the cost is O(1) per *rare* event, not per request —
and snapshots itself automatically when something goes wrong:

* a worker's batch raised (request failure / worker crash);
* a shed burst (``shed_burst_threshold`` sheds since the last dump —
  one saturated second must not produce a thousand dumps);
* ``engine.parallel_run`` timed out;
* ``InferenceServer.stop`` found stuck workers.

A dump captures the ring plus the most recent spans of the armed
tracer (if any).  Dumps are kept in a bounded in-memory deque for
post-mortem inspection (``RECORDER.dumps``); set ``REPRO_FLIGHT_DIR``
(or :attr:`FlightRecorder.dump_dir`) to also write each one to a JSON
file.
"""

from __future__ import annotations

import itertools
import json
import os
from collections import deque
from time import monotonic
from typing import Any, Callable, Dict, List, Optional

from repro.check.instrument import TracedLock
from repro.obs import trace as obs_trace

DUMP_DIR_ENV = "REPRO_FLIGHT_DIR"

#: ring capacity (events); dumps keep the most recent spans too
DEFAULT_RING = 2048
#: recent finished spans included per dump
DUMP_SPANS = 256
#: in-memory dumps retained (oldest evicted)
DUMP_KEEP = 8


class FlightRecorder:
    """Bounded event ring + automatic trouble dumps."""

    def __init__(self, limit: int = DEFAULT_RING,
                 clock: Callable[[], float] = monotonic,
                 shed_burst_threshold: int = 16):
        self.clock = clock
        self._lock = TracedLock("obs.recorder")
        self._ring: deque = deque(maxlen=max(1, limit))
        self._dump_ids = itertools.count(1)
        self._shed_since_dump = 0
        self.shed_burst_threshold = max(1, shed_burst_threshold)
        self.dumps: deque = deque(maxlen=DUMP_KEEP)
        self.dump_dir: Optional[str] = \
            os.environ.get(DUMP_DIR_ENV) or None

    # -- feeding ----------------------------------------------------------
    def note(self, kind: str, message: str = "",
             **attrs: Any) -> None:
        """Append one event to the ring (cheap, never raises upward
        into the caller's control flow)."""
        event = {"t": self.clock(), "kind": kind, "message": message}
        if attrs:
            event.update(attrs)
        with self._lock:
            self._ring.append(event)

    def note_shed(self, rows: int, priority: str, where: str) -> None:
        """Record a shed; auto-dumps once per burst of
        ``shed_burst_threshold`` sheds."""
        self.note("shed", where, rows=rows, priority=priority)
        with self._lock:
            self._shed_since_dump += 1
            burst = self._shed_since_dump >= self.shed_burst_threshold
            if burst:
                self._shed_since_dump = 0
        if burst:
            self.dump("shed-burst")

    # -- dumping ----------------------------------------------------------
    def dump(self, reason: str,
             tracer: Optional["obs_trace.Tracer"] = None) -> dict:
        """Snapshot the ring (+ recent spans of the active tracer) into
        ``self.dumps``; also writes ``flight-<n>-<reason>.json`` when a
        dump directory is configured."""
        tracer = tracer if tracer is not None else obs_trace.ACTIVE
        with self._lock:
            events = list(self._ring)
            dump_id = next(self._dump_ids)
        record: Dict[str, Any] = {
            "dump_id": dump_id,
            "reason": reason,
            "t": self.clock(),
            "events": events,
        }
        if tracer is not None:
            record["spans"] = [
                {"name": s.name, "cat": s.cat, "trace": s.trace_id,
                 "span": s.span_id, "parent": s.parent_id,
                 "start": s.start, "end": s.end, "status": s.status,
                 "attrs": s.attrs}
                for s in tracer.spans()[-DUMP_SPANS:]
            ]
        self.dumps.append(record)
        if self.dump_dir:
            try:
                os.makedirs(self.dump_dir, exist_ok=True)
                path = os.path.join(
                    self.dump_dir, f"flight-{dump_id}-{reason}.json")
                with open(path, "w", encoding="utf-8") as fh:
                    json.dump(record, fh, indent=2, sort_keys=True)
            except OSError:
                # a full disk must not turn a diagnostic into a crash
                pass
        return record

    def events(self) -> List[dict]:
        with self._lock:
            return list(self._ring)

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()
            self._shed_since_dump = 0
        self.dumps.clear()


#: the process recorder — always on (the ring only fills on rare
#: events, so there is nothing to arm)
RECORDER = FlightRecorder()
