"""Chrome trace-event export: spans + simulated device timelines.

Emits the `Trace Event Format`_ JSON object form —
``{"traceEvents": [...], "displayTimeUnit": "ms"}`` with complete
(``"ph": "X"``) events — loadable in Perfetto / ``chrome://tracing``.

Two time bases share the file, deliberately kept in separate process
groups:

* **wall clock** (pid 1): every :class:`~repro.obs.trace.Span`,
  normalized so the earliest span starts at t=0.  Request trees render
  one track per ``trace_id`` (tid = trace id), so a request's queue
  wait, routing probe, and per-slice compute nest visually on one row.
  Other categories (engine iterations, swap barriers, batcher rounds)
  get per-thread tracks.
* **simulated device time** (pid 100+): each session's
  :class:`~repro.device.timeline.Timeline` contributes one thread per
  stream (compute / D2H / H2D) — the paper's offload/prefetch overlap,
  literally visible.  Simulated seconds are *not* wall seconds; the
  process naming says so.

``otherData.requests`` carries the serving counters so the validator
can check the fleet identity offline: every offered request owns
exactly one root span, and completed + failed + shed partition the
roots by status.

.. _Trace Event Format:
   https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence

from repro.obs.trace import Span, Tracer

#: JSON-schema (draft-ish subset) for one trace event — the obs-smoke
#: CI job validates every emitted event against this shape
EVENT_SCHEMA: Dict[str, Any] = {
    "type": "object",
    "required": ["name", "ph", "ts", "pid", "tid"],
    "properties": {
        "name": {"type": "string"},
        "cat": {"type": "string"},
        "ph": {"enum": ["X", "M"]},
        "ts": {"type": "number", "minimum": 0},
        "dur": {"type": "number", "minimum": 0},
        "pid": {"type": "integer"},
        "tid": {"type": "integer"},
        "args": {"type": "object"},
    },
}

TRACE_SCHEMA: Dict[str, Any] = {
    "type": "object",
    "required": ["traceEvents"],
    "properties": {
        "traceEvents": {"type": "array", "items": EVENT_SCHEMA},
        "displayTimeUnit": {"enum": ["ms", "ns"]},
        "otherData": {"type": "object"},
    },
}

_TYPES = {"object": dict, "array": list, "string": str, "integer": int}

#: wall-clock spans live in this pid; simulated timelines start here
SPAN_PID = 1
SIM_PID_BASE = 100

#: root-span name/category contract the serve layer emits and the
#: validator checks (one place, so they cannot drift apart)
REQUEST_ROOT = "request"
SERVE_CAT = "serve"


def _check(value: Any, schema: Dict[str, Any], where: str,
           problems: List[str]) -> None:
    """Minimal JSON-schema subset checker (type/required/properties/
    items/enum/minimum) — enough to hold EVENT_SCHEMA, no new deps."""
    t = schema.get("type")
    if t == "number":
        if not isinstance(value, (int, float)) \
                or isinstance(value, bool):
            problems.append(f"{where}: expected number, got "
                            f"{type(value).__name__}")
            return
    elif t == "integer":
        if not isinstance(value, int) or isinstance(value, bool):
            problems.append(f"{where}: expected integer, got "
                            f"{type(value).__name__}")
            return
    elif t is not None:
        if not isinstance(value, _TYPES[t]):
            problems.append(f"{where}: expected {t}, got "
                            f"{type(value).__name__}")
            return
    if "enum" in schema and value not in schema["enum"]:
        problems.append(f"{where}: {value!r} not in {schema['enum']}")
    if "minimum" in schema and isinstance(value, (int, float)) \
            and not isinstance(value, bool) \
            and value < schema["minimum"]:
        problems.append(f"{where}: {value} < {schema['minimum']}")
    if isinstance(value, dict):
        for key in schema.get("required", ()):
            if key not in value:
                problems.append(f"{where}: missing required {key!r}")
        for key, sub in schema.get("properties", {}).items():
            if key in value:
                _check(value[key], sub, f"{where}.{key}", problems)
    if isinstance(value, list) and "items" in schema:
        for i, item in enumerate(value):
            _check(item, schema["items"], f"{where}[{i}]", problems)


def _span_events(spans: Sequence[Span]) -> List[dict]:
    if not spans:
        return []
    t0 = min(s.start for s in spans)
    events: List[dict] = [{
        "name": "process_name", "ph": "M", "ts": 0, "pid": SPAN_PID,
        "tid": 0, "args": {"name": "wall clock (spans)"},
    }]
    named_tids: Dict[int, str] = {}
    thread_tids: Dict[str, int] = {}
    for s in spans:
        end = s.start if s.end is None else s.end
        if s.cat == SERVE_CAT:
            # one track per request tree: the tid IS the trace id
            tid = s.trace_id
            named_tids.setdefault(tid, f"request {s.trace_id}")
        else:
            # other categories track per originating thread
            tid = thread_tids.setdefault(
                s.thread, 10_000 + len(thread_tids))
            named_tids.setdefault(tid, f"{s.cat} [{s.thread}]")
        args = {"trace": s.trace_id, "span": s.span_id,
                "status": s.status}
        if s.parent_id is not None:
            args["parent"] = s.parent_id
        args.update(s.attrs)
        events.append({
            "name": s.name, "cat": s.cat, "ph": "X",
            "ts": round((s.start - t0) * 1e6, 3),
            "dur": round(max(end - s.start, 0.0) * 1e6, 3),
            "pid": SPAN_PID, "tid": tid, "args": args,
        })
    for tid, label in sorted(named_tids.items()):
        events.append({"name": "thread_name", "ph": "M", "ts": 0,
                       "pid": SPAN_PID, "tid": tid,
                       "args": {"name": label}})
    return events


def _timeline_events(timelines: Dict[str, Any]) -> List[dict]:
    """One simulated-time process per session timeline, one thread per
    stream; op records become complete events in simulated µs."""
    events: List[dict] = []
    for i, (label, timeline) in enumerate(sorted(timelines.items())):
        pid = SIM_PID_BASE + i
        events.append({
            "name": "process_name", "ph": "M", "ts": 0, "pid": pid,
            "tid": 0,
            "args": {"name": f"simulated device — {label}"},
        })
        streams: Dict[str, int] = {}
        for op in timeline.ops():
            stream = op.stream.value if hasattr(op.stream, "value") \
                else str(op.stream)
            tid = streams.setdefault(stream, len(streams) + 1)
            events.append({
                "name": op.label, "cat": f"sim.{stream}", "ph": "X",
                "ts": round(op.start * 1e6, 3),
                "dur": round(max(op.end - op.start, 0.0) * 1e6, 3),
                "pid": pid, "tid": tid, "args": {},
            })
        for stream, tid in sorted(streams.items(), key=lambda kv: kv[1]):
            events.append({"name": "thread_name", "ph": "M", "ts": 0,
                           "pid": pid, "tid": tid,
                           "args": {"name": stream}})
    return events


def build_chrome_trace(tracer: Optional[Tracer] = None,
                       timelines: Optional[Dict[str, Any]] = None,
                       counts: Optional[Dict[str, int]] = None) -> dict:
    """Assemble the trace document (no I/O); ``counts`` is the serving
    ``{"completed": ..., "failed": ..., "shed": ...}`` identity the
    validator checks the root spans against."""
    events: List[dict] = []
    other: Dict[str, Any] = {}
    if tracer is not None:
        events.extend(_span_events(tracer.spans()))
        if tracer.truncated:
            other["spans_truncated"] = True
    if timelines:
        events.extend(_timeline_events(timelines))
    if counts is not None:
        other["requests"] = {k: int(v) for k, v in counts.items()}
    doc: Dict[str, Any] = {"traceEvents": events,
                           "displayTimeUnit": "ms"}
    if other:
        doc["otherData"] = other
    return doc


def export_chrome_trace(path, tracer: Optional[Tracer] = None,
                        timelines: Optional[Dict[str, Any]] = None,
                        counts: Optional[Dict[str, int]] = None) -> dict:
    """Build, validate, and write ``trace.json``; raises ``ValueError``
    on a malformed document (exporting garbage would defeat the point)."""
    doc = build_chrome_trace(tracer, timelines=timelines, counts=counts)
    problems = validate_trace(doc)
    if problems:
        raise ValueError("refusing to export an invalid trace:\n  "
                         + "\n  ".join(problems))
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=None, separators=(",", ":"))
        fh.write("\n")
    return doc


# ------------------------------------------------------------- validation
def validate_trace(doc: Any) -> List[str]:
    """Schema + structural checks; returns problems ([] = valid).

    Beyond the per-event schema: every ``serve``-category span tree has
    exactly one root named :data:`REQUEST_ROOT`; children start/end
    inside their root's interval (well-formed nesting, 1 µs tolerance
    for float rounding); and when ``otherData.requests`` is present,
    the roots partition exactly into completed (``ok``) + failed
    (``error``) + shed (``shed``) — the fleet accounting identity,
    checkable offline from the artifact alone.
    """
    problems: List[str] = []
    _check(doc, TRACE_SCHEMA, "trace", problems)
    if problems:
        return problems
    serve_spans: Dict[int, List[dict]] = {}
    for i, ev in enumerate(doc["traceEvents"]):
        if ev["ph"] == "X" and "dur" not in ev:
            problems.append(f"trace.traceEvents[{i}]: X event "
                            "missing dur")
        if ev.get("cat") == SERVE_CAT:
            serve_spans.setdefault(
                ev["args"]["trace"], []).append(ev)
    roots: List[dict] = []
    for trace_id, events in sorted(serve_spans.items()):
        tree_roots = [e for e in events
                      if "parent" not in e["args"]]
        if len(tree_roots) != 1:
            problems.append(
                f"trace {trace_id}: {len(tree_roots)} root spans, "
                "expected exactly 1")
            continue
        root = tree_roots[0]
        if root["name"] != REQUEST_ROOT:
            problems.append(
                f"trace {trace_id}: root span named {root['name']!r}, "
                f"expected {REQUEST_ROOT!r}")
        roots.append(root)
        r0, r1 = root["ts"], root["ts"] + root["dur"]
        for ev in events:
            if ev is root:
                continue
            e0, e1 = ev["ts"], ev["ts"] + ev["dur"]
            if e0 < r0 - 1.0 or e1 > r1 + 1.0:
                problems.append(
                    f"trace {trace_id}: span {ev['name']!r} "
                    f"[{e0:.1f}, {e1:.1f}]µs outside its root "
                    f"[{r0:.1f}, {r1:.1f}]µs")
    counts = doc.get("otherData", {}).get("requests")
    if counts is not None:
        by_status = {"ok": 0, "error": 0, "shed": 0}
        for root in roots:
            status = root["args"].get("status")
            if status not in by_status:
                problems.append(
                    f"root span trace {root['args']['trace']}: "
                    f"unexpected status {status!r}")
            else:
                by_status[status] += 1
        expected = {"ok": counts.get("completed", 0),
                    "error": counts.get("failed", 0),
                    "shed": counts.get("shed", 0)}
        if by_status != expected:
            problems.append(
                f"span/request identity broken: root spans by status "
                f"{by_status} != recorded counts {expected}")
        offered = sum(expected.values())
        if len(roots) != offered:
            problems.append(
                f"{len(roots)} root spans for {offered} offered "
                "requests (one root per offered request)")
    return problems


def validate_trace_file(path) -> List[str]:
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{path}: unreadable trace ({exc})"]
    return validate_trace(doc)
