"""Process-wide metrics registry: counters, gauges, histograms, probes.

Four surfaces already count things —
:class:`~repro.serve.metrics.ServerMetrics`/``FleetMetrics`` windows,
:class:`~repro.mempool.stats.AllocatorStats`, the tensor-cache
hit/miss/evict counters, and the device :class:`~repro.device.timeline`
busy clocks — each with its own locking and its own export shape.  The
registry does not replace them; it gives them one namespace to
*register into*, one ``collect()`` snapshot, one JSON-lines exporter
and one renderer, so the CLI, the obs-smoke CI job and a monitoring
sidecar all read the same surface.

Two instrument families:

* **owned** — :class:`Counter`, :class:`Gauge`, :class:`Histogram`
  created via the registry; thread-safe, lock-per-instrument (the lock
  is a leaf, safe to touch from worker threads);
* **probes** — a name bound to a zero-arg callable over an *existing*
  locked stats object (``server.metrics.to_dict``, allocator stats,
  cache counters).  The callable runs at ``collect()`` time, so the
  owning subsystem keeps its own synchronization and the registry adds
  no per-event cost to hot paths.  A probe may carry a ``renderer``
  (value -> str) — ``serve.metrics.render_slo_report`` plugs in here,
  so the CLI's SLO block and the registry's render never drift.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Any, Callable, Dict, List, Optional

import numpy as np

from repro.check.instrument import TracedLock

#: histogram samples kept per instrument (rolling window, O(1) memory)
HISTOGRAM_WINDOW = 8192


class Counter:
    """Monotonic event count (``inc`` only goes up)."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str):
        self.name = name
        self._lock = TracedLock("obs.metric")
        self._value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        with self._lock:
            self._value += n

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Gauge:
    """Last-write-wins instantaneous value."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str):
        self.name = name
        self._lock = TracedLock("obs.metric")
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, delta: float) -> None:
        with self._lock:
            self._value += float(delta)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Rolling-window distribution with percentile snapshots."""

    __slots__ = ("name", "_lock", "_window", "_count", "_sum")

    def __init__(self, name: str, window: int = HISTOGRAM_WINDOW):
        self.name = name
        self._lock = TracedLock("obs.metric")
        self._window: deque = deque(maxlen=window)
        self._count = 0
        self._sum = 0.0

    def observe(self, value: float) -> None:
        with self._lock:
            self._window.append(float(value))
            self._count += 1
            self._sum += float(value)

    def snapshot(self) -> Dict[str, float]:
        with self._lock:
            samples = list(self._window)
            count, total = self._count, self._sum
        if not samples:
            return {"count": count, "sum": total, "mean": 0.0,
                    "p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0}
        arr = np.asarray(samples)
        return {
            "count": count,
            "sum": total,
            "mean": float(arr.mean()),
            "p50": float(np.percentile(arr, 50)),
            "p95": float(np.percentile(arr, 95)),
            "p99": float(np.percentile(arr, 99)),
            "max": float(arr.max()),
        }

    @property
    def value(self) -> Dict[str, float]:
        return self.snapshot()


class Probe:
    """A registered window onto someone else's stats object."""

    __slots__ = ("name", "fn", "renderer")

    def __init__(self, name: str, fn: Callable[[], Any],
                 renderer: Optional[Callable[[Any], str]] = None):
        self.name = name
        self.fn = fn
        self.renderer = renderer

    @property
    def value(self) -> Any:
        return self.fn()


class MetricsRegistry:
    """One namespace of instruments; snapshot, export, render.

    ``counter``/``gauge``/``histogram`` are get-or-create (idempotent
    for the same type; a name clash across types raises — one name, one
    meaning).  ``probe`` replaces on re-register: a restarted server
    re-binding its name must win over the dead instance's callable.
    """

    def __init__(self) -> None:
        self._lock = TracedLock("obs.registry")
        self._instruments: Dict[str, Any] = {}

    def _get_or_create(self, name: str, cls, *args):
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if type(existing) is not cls:
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{type(existing).__name__}")
                return existing
            inst = cls(name, *args)
            self._instruments[name] = inst
            return inst

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(self, name: str,
                  window: int = HISTOGRAM_WINDOW) -> Histogram:
        return self._get_or_create(name, Histogram, window)

    def probe(self, name: str, fn: Callable[[], Any],
              renderer: Optional[Callable[[Any], str]] = None) -> Probe:
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None and type(existing) is not Probe:
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{type(existing).__name__}")
            inst = Probe(name, fn, renderer)
            self._instruments[name] = inst
            return inst

    def unregister(self, prefix: str) -> int:
        """Drop every instrument whose name is ``prefix`` or starts
        with ``prefix.``; returns how many were removed."""
        with self._lock:
            doomed = [n for n in self._instruments
                      if n == prefix or n.startswith(prefix + ".")]
            for n in doomed:
                del self._instruments[n]
            return len(doomed)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._instruments)

    def get(self, name: str) -> Optional[Any]:
        with self._lock:
            return self._instruments.get(name)

    # -- export -----------------------------------------------------------
    def collect(self) -> Dict[str, dict]:
        """``{name: {"type": ..., "value": ...}}`` snapshot.  Probes run
        *outside* the registry lock (their callables take the owning
        subsystem's locks; holding ours across them would couple two
        unrelated lock domains)."""
        with self._lock:
            items = sorted(self._instruments.items())
        out: Dict[str, dict] = {}
        for name, inst in items:
            out[name] = {"type": type(inst).__name__.lower(),
                         "value": inst.value}
        return out

    def export_jsonl(self, path, extra: Optional[dict] = None) -> dict:
        """Append one JSON line ``{"metrics": collect(), **extra}`` to
        ``path`` — a scrape, not a rewrite, so a sampler loop appending
        every N seconds yields a time series."""
        record = dict(extra or {})
        record["metrics"] = self.collect()
        with open(path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(record, sort_keys=True) + "\n")
        return record

    def render(self) -> str:
        """Human-readable listing; a probe with a renderer delegates to
        it (the shared SLO renderer keeps CLI and registry identical)."""
        with self._lock:
            items = sorted(self._instruments.items())
        lines: List[str] = []
        for name, inst in items:
            if isinstance(inst, Probe) and inst.renderer is not None:
                body = inst.renderer(inst.value)
                lines.append(f"{name}:")
                lines.extend("  " + ln for ln in body.splitlines())
            elif isinstance(inst, Histogram):
                snap = inst.snapshot()
                lines.append(
                    f"{name}: n={snap['count']} mean={snap['mean']:.4g} "
                    f"p50={snap['p50']:.4g} p95={snap['p95']:.4g} "
                    f"p99={snap['p99']:.4g} max={snap['max']:.4g}")
            elif isinstance(inst, Probe):
                lines.append(f"{name}: {inst.value!r}")
            else:
                lines.append(f"{name}: {inst.value}")
        return "\n".join(lines)


#: the process registry (subsystems may also build private ones in
#: tests — every method works the same on a fresh instance)
REGISTRY = MetricsRegistry()
