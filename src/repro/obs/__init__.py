"""repro.obs — unified observability: spans, metrics, traces, forensics.

The runtime's four counting surfaces (serving SLO windows, allocator
stats, tensor-cache counters, the simulated device timeline) grew up
separately; this package is the layer that reads them as one story:

* :mod:`repro.obs.trace` — the span tracer.  One serving request (or
  one engine iteration) is one tree of timed :class:`Span` s with a
  shared trace id; armed via ``RuntimeConfig.trace`` / ``REPRO_TRACE``
  with the same near-zero-disarmed-cost discipline as
  ``REPRO_TRACE_SYNC`` (one global load + ``is None`` per hook).
* :mod:`repro.obs.export` — the Chrome trace-event exporter: wall-clock
  spans merged with the *simulated* device timeline streams into one
  Perfetto-loadable ``trace.json``, plus the schema validator the
  obs-smoke CI job gates on (span nesting, one root per offered
  request, completed+failed+shed partition the roots).
* :mod:`repro.obs.metrics` — the process-wide :class:`MetricsRegistry`
  (counter / gauge / histogram / probe) that ``ServerMetrics``,
  ``FleetMetrics``, mempool stats and cache counters register into,
  with a JSON-lines exporter and one renderer the CLI reuses.
* :mod:`repro.obs.recorder` — the flight recorder: a bounded ring of
  recent events dumped automatically on request failure, shed burst,
  ``parallel_run`` timeout, or a stuck worker.
"""

from repro.obs.export import (
    build_chrome_trace,
    export_chrome_trace,
    validate_trace,
    validate_trace_file,
)
from repro.obs.metrics import (
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.recorder import RECORDER, FlightRecorder
from repro.obs.trace import (
    ACTIVE,
    Span,
    Tracer,
    active_tracer,
    arm,
    armed,
    capture,
    disarm,
)

__all__ = [
    "ACTIVE",
    "Counter",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RECORDER",
    "REGISTRY",
    "Span",
    "Tracer",
    "active_tracer",
    "arm",
    "armed",
    "build_chrome_trace",
    "capture",
    "disarm",
    "export_chrome_trace",
    "validate_trace",
    "validate_trace_file",
]
