"""The span tracer: one request (or iteration) = one tree of timed spans.

A :class:`Span` is a named, timed interval with a ``trace_id`` shared by
its whole tree and an explicit ``parent_id`` — context rides the object
(a serving request carries its root span across the submitter, the
assembling worker and the computing worker), never a thread-local,
because the interesting trees here *cross* threads by design.

Arming follows the exact discipline of
:mod:`repro.check.instrument` (``REPRO_TRACE_SYNC``): a module-level
:data:`ACTIVE` tracer, hooks that cost one global load + ``is None``
when disarmed, an env knob (``REPRO_TRACE``) honored at import, a
config knob (``RuntimeConfig.trace``) resolved at engine/executor
construction via :func:`resolve_arm`, and a :func:`capture` context
manager for tests.  ``RuntimeConfig.trace`` is three-state:

* ``None``  — defer to the env/global arming (the disarmed-cost path);
* ``True``  — arm the process tracer when the engine/executor builds;
* ``False`` — suppress the executor's per-iteration hook entirely (the
  hook-free control arm the ``bench_steady_state`` overhead gate
  measures the disarmed path against).

The tracer is bounded (:data:`DEFAULT_LIMIT` spans, ``REPRO_TRACE_LIMIT``
to override): past the cap new spans are created but not retained, and
:attr:`Tracer.truncated` says so — a long serving run keeps O(1) memory
and never silently pretends the dropped spans were captured.
"""

from __future__ import annotations

import itertools
import os
import threading
from contextlib import contextmanager
from time import monotonic
from typing import Any, Callable, Dict, Iterator, List, Optional

from repro.check.instrument import TracedLock

#: arming knob honored at import time (mirrors ``REPRO_TRACE_SYNC``)
TRACE_ENV = "REPRO_TRACE"
#: span-capacity companion (mirrors ``REPRO_TRACE_SYNC_CAP``)
CAP_ENV = "REPRO_TRACE_LIMIT"

#: retained spans per tracer unless overridden — at ~200 bytes a span
#: this bounds an armed run to tens of MB, not unbounded growth
DEFAULT_LIMIT = 262_144

#: per-stream device-timeline op records kept when tracing arms a
#: :class:`~repro.device.timeline.Timeline` op log (the exporter merges
#: them; an unbounded serving run must not grow the log without limit)
TIMELINE_OPS_LIMIT = 200_000


def default_limit() -> int:
    raw = os.environ.get(CAP_ENV, "")
    try:
        return max(1, int(raw))
    except ValueError:
        return DEFAULT_LIMIT


class Span:
    """One timed interval in a trace tree.

    ``start``/``end`` are seconds on the owning tracer's clock (the
    serving stack injects one shared monotonic clock, so span edges and
    request timestamps live in one time base).  ``finish`` is
    idempotent — the first call wins, late calls are no-ops — because a
    split request's root can race its queue-wait child's closer.
    """

    __slots__ = ("tracer", "name", "cat", "trace_id", "span_id",
                 "parent_id", "start", "end", "status", "attrs",
                 "thread")

    def __init__(self, tracer: "Tracer", name: str, cat: str,
                 trace_id: int, span_id: int, parent_id: Optional[int],
                 start: float, attrs: Optional[Dict[str, Any]]):
        self.tracer = tracer
        self.name = name
        self.cat = cat
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = start
        self.end: Optional[float] = None
        self.status = "open"
        self.attrs: Dict[str, Any] = dict(attrs) if attrs else {}
        self.thread = threading.current_thread().name

    def child(self, name: str, cat: Optional[str] = None,
              start: Optional[float] = None,
              attrs: Optional[Dict[str, Any]] = None) -> "Span":
        return self.tracer.start(name, cat=cat or self.cat, parent=self,
                                 start=start, attrs=attrs)

    def finish(self, end: Optional[float] = None, status: str = "ok",
               **attrs: Any) -> None:
        """Close the span (first call wins; late calls are no-ops)."""
        self.tracer._finish(self, end, status, attrs)

    @property
    def duration(self) -> float:
        return 0.0 if self.end is None else self.end - self.start

    def __repr__(self) -> str:  # pragma: no cover
        return (f"Span({self.name!r}, trace={self.trace_id}, "
                f"id={self.span_id}, status={self.status})")


class Tracer:
    """Bounded, thread-safe collector of span trees.

    The lock is a leaf: the tracer never acquires another lock while
    holding it, so span hooks are safe from inside the queue monitor,
    a request's delivery lock, or the metrics lock.
    """

    def __init__(self, clock: Callable[[], float] = monotonic,
                 limit: Optional[int] = None):
        self.clock = clock
        self.limit = default_limit() if limit is None else max(1, limit)
        self._lock = TracedLock("obs.tracer")
        self._spans: List[Span] = []
        self._span_ids = itertools.count(1)
        self._trace_ids = itertools.count(1)
        self.truncated = False

    # -- creation ---------------------------------------------------------
    def root(self, name: str, cat: str = "serve",
             start: Optional[float] = None,
             attrs: Optional[Dict[str, Any]] = None) -> Span:
        """Open a new trace tree (fresh ``trace_id``, no parent)."""
        return self._open(name, cat, next(self._trace_ids), None,
                          start, attrs)

    def start(self, name: str, cat: str = "serve",
              parent: Optional[Span] = None,
              start: Optional[float] = None,
              attrs: Optional[Dict[str, Any]] = None) -> Span:
        """Open a span; with ``parent`` it joins that tree."""
        if parent is None:
            return self.root(name, cat=cat, start=start, attrs=attrs)
        return self._open(name, cat, parent.trace_id, parent.span_id,
                          start, attrs)

    def emit(self, name: str, start: float, end: float,
             cat: str = "serve", parent: Optional[Span] = None,
             status: str = "ok",
             attrs: Optional[Dict[str, Any]] = None) -> Span:
        """Record an already-finished interval in one call (the worker
        emits per-slice compute spans after the step completed)."""
        span = self.start(name, cat=cat, parent=parent, start=start,
                          attrs=attrs)
        span.finish(end=end, status=status)
        return span

    @contextmanager
    def span(self, name: str, cat: str = "serve",
             parent: Optional[Span] = None,
             attrs: Optional[Dict[str, Any]] = None) -> Iterator[Span]:
        """``with tracer.span("compile"):`` — finishes on exit, status
        ``"error"`` (with the exception type) when the body raised."""
        sp = self.start(name, cat=cat, parent=parent, attrs=attrs)
        try:
            yield sp
        except BaseException as exc:
            sp.finish(status="error", error=type(exc).__name__)
            raise
        else:
            sp.finish()

    def _open(self, name: str, cat: str, trace_id: int,
              parent_id: Optional[int], start: Optional[float],
              attrs: Optional[Dict[str, Any]]) -> Span:
        span = Span(self, name, cat, trace_id, next(self._span_ids),
                    parent_id, self.clock() if start is None else start,
                    attrs)
        with self._lock:
            if len(self._spans) < self.limit:
                self._spans.append(span)
            else:
                self.truncated = True
        return span

    def _finish(self, span: Span, end: Optional[float], status: str,
                attrs: Dict[str, Any]) -> None:
        with self._lock:
            if span.end is not None:
                return
            span.end = self.clock() if end is None else end
            span.status = status
            if attrs:
                span.attrs.update(attrs)

    # -- reading ----------------------------------------------------------
    def spans(self) -> List[Span]:
        """Snapshot of the retained spans (creation order)."""
        with self._lock:
            return list(self._spans)

    def roots(self, name: Optional[str] = None) -> List[Span]:
        return [s for s in self.spans() if s.parent_id is None
                and (name is None or s.name == name)]

    def by_trace(self) -> Dict[int, List[Span]]:
        trees: Dict[int, List[Span]] = {}
        for s in self.spans():
            trees.setdefault(s.trace_id, []).append(s)
        return trees

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)


# -------------------------------------------------------------- arming
#: the process tracer; ``None`` = disarmed.  Hooks pay one global load
#: + ``is None`` when disarmed — the REPRO_TRACE_SYNC discipline.
ACTIVE: Optional[Tracer] = None


def _env_armed() -> bool:
    return os.environ.get(TRACE_ENV, "").strip().lower() \
        not in ("", "0", "false", "no", "off")


def arm(tracer: Optional[Tracer] = None) -> Tracer:
    """Install ``tracer`` (or keep/create one) as :data:`ACTIVE`."""
    global ACTIVE
    if tracer is not None:
        ACTIVE = tracer
    elif ACTIVE is None:
        ACTIVE = Tracer()
    return ACTIVE


def disarm() -> Optional[Tracer]:
    """Disarm; returns the tracer that was active (for inspection)."""
    global ACTIVE
    tracer, ACTIVE = ACTIVE, None
    return tracer


def armed() -> bool:
    return ACTIVE is not None


def active_tracer() -> Optional[Tracer]:
    return ACTIVE


def resolve_arm(flag: Optional[bool],
                limit: Optional[int] = None) -> None:
    """Resolve a config's three-state ``trace`` knob (engine/executor
    construction).  ``True`` arms (and applies ``limit``); ``False`` and
    ``None`` leave the global state alone — ``False`` only suppresses
    that executor's own hooks, it must not disarm a tracer some other
    engine armed."""
    if flag:
        tracer = arm()
        if limit is not None:
            tracer.limit = max(1, int(limit))


@contextmanager
def capture(limit: Optional[int] = None,
            clock: Callable[[], float] = monotonic) -> Iterator[Tracer]:
    """Arm a fresh tracer for the block, restoring the prior state on
    exit — the test-suite entry point."""
    global ACTIVE
    prev = ACTIVE
    tracer = Tracer(clock=clock, limit=limit)
    ACTIVE = tracer
    try:
        yield tracer
    finally:
        ACTIVE = prev


if _env_armed():  # honor REPRO_TRACE=1 at import, like REPRO_TRACE_SYNC
    arm()
